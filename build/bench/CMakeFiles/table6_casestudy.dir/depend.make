# Empty dependencies file for table6_casestudy.
# This may be replaced when dependencies are built.
