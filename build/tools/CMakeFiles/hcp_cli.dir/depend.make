# Empty dependencies file for hcp_cli.
# This may be replaced when dependencies are built.
