file(REMOVE_RECURSE
  "CMakeFiles/hcp_cli.dir/hcp_cli.cpp.o"
  "CMakeFiles/hcp_cli.dir/hcp_cli.cpp.o.d"
  "hcp_cli"
  "hcp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
