// Design-space exploration with predicted congestion: the use case the
// paper's introduction motivates. Sweep unroll factors for the digit
// recognizer and, for each point, get latency from HLS and congestion from
// the trained predictor — no place-and-route in the loop. One reference
// implementation at the end checks the chosen point.
#include <cstdio>
#include <vector>

#include "apps/digit_spam.hpp"
#include "apps/vision_suite.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"

using namespace hcp;

int main() {
  const auto device = fpga::Device::xc7z020like();

  // Train once, on a different design (face detection would work too; the
  // combined suite gives broader coverage).
  std::printf("training the predictor on the vision suite...\n");
  auto trainingFlow =
      core::runFlow(apps::visionCombined(), device, {});
  const auto dataset = core::buildDataset(trainingFlow, {});
  core::CongestionPredictor predictor{core::PredictorOptions{}};
  predictor.train(dataset);

  // Sweep: unroll factor of the KNN distance loop.
  std::printf("\n%-8s %-12s %-14s %-18s\n", "unroll", "HLS cycles",
              "pred avg cong", "pred max-op cong");
  std::vector<std::uint32_t> factors{1, 4, 8, 16, 32, 64};
  struct Point {
    std::uint32_t unroll;
    double latency;
    double worst;
  };
  std::vector<Point> points;
  for (const std::uint32_t unroll : factors) {
    apps::DigitRecognitionConfig cfg;
    cfg.unroll = unroll;
    auto app = apps::digitRecognition(cfg);
    const auto design =
        hls::synthesize(std::move(app.module), app.directives, {});
    // Predicted congestion over all functional ops.
    features::FeatureExtractor extractor(design, {});
    const auto& fn = design.topFunction();
    double sum = 0.0, worst = 0.0;
    std::size_t n = 0;
    for (ir::OpId op = 0; op < fn.numOps(); ++op) {
      if (!ir::isFunctionalUnit(fn.op(op).opcode)) continue;
      const auto p = predictor.predictOp(
          extractor, design.module->topIndex(), op);
      sum += p.average;
      worst = std::max(worst, p.average);
      ++n;
    }
    const double latency =
        static_cast<double>(design.top().report.latency);
    const double meanCong = n ? sum / static_cast<double>(n) : 0.0;
    std::printf("%-8u %-12.0f %-14.1f %-18.1f\n", unroll, latency, meanCong,
                worst);
    points.push_back({unroll, latency, worst});
  }

  // Pick the fastest point whose predicted worst-op congestion stays within
  // a few percent of the sweep's best — i.e. take the free parallelism, stop
  // where the predictor says routing pressure starts climbing.
  double bestWorst = points.front().worst;
  for (const auto& p : points) bestWorst = std::min(bestWorst, p.worst);
  std::uint32_t chosen = points.front().unroll;
  double chosenLatency = points.front().latency;
  for (const auto& p : points) {
    if (p.worst <= bestWorst + 2.0 && p.latency < chosenLatency) {
      chosen = p.unroll;
      chosenLatency = p.latency;
    }
  }

  std::printf("\nchosen point: unroll=%u — verifying with a real "
              "implementation...\n", chosen);
  apps::DigitRecognitionConfig best;
  best.unroll = chosen;
  const auto check =
      core::runFlow(apps::digitRecognition(best), device, {});
  std::printf("implemented: latency %llu cycles, Fmax %.1f MHz, max cong "
              "V/H %.1f/%.1f%%, %zu tiles over 100%%\n",
              static_cast<unsigned long long>(check.latencyCycles),
              check.maxFrequencyMhz, check.maxVCongestion,
              check.maxHCongestion, check.congestedTiles);
  return 0;
}
