// Congestion advisor: reproduces the paper's §IV-C workflow end-to-end.
//
// Train on the congested baseline, let the predictor locate the hotspot, let
// the advisor propose fixes, apply them (Not-Inline, then Replication), and
// verify each step with a real implementation run — showing the same
// trajectory as Table VI: congestion down, Fmax up, latency nearly flat.
#include <cstdio>

#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"
#include "core/resolver.hpp"

using namespace hcp;

namespace {
void report(const char* tag, const core::FlowResult& flow) {
  std::printf("%-12s WNS %8.2f ns | Fmax %5.1f MHz | latency %8llu cyc | "
              "max V/H %5.1f/%5.1f %% | tiles>100%%: %zu\n",
              tag, flow.wnsNs, flow.maxFrequencyMhz,
              static_cast<unsigned long long>(flow.latencyCycles),
              flow.maxVCongestion, flow.maxHCongestion,
              flow.congestedTiles);
}
}  // namespace

int main() {
  const auto device = fpga::Device::xc7z020like();

  // Step 0: the congested baseline (all classifiers inlined, window array
  // completely partitioned, loops unrolled).
  std::printf("== baseline ==\n");
  auto baseline = core::runFlow(apps::faceDetection({}), device, {});
  report("baseline", baseline);

  // Train on the baseline and ask where the congestion lives.
  const auto dataset = core::buildDataset(baseline, {});
  core::CongestionPredictor predictor{core::PredictorOptions{}};
  predictor.train(dataset);
  const auto hotspots = predictor.findHotspots(baseline.design, {}, 5);
  std::printf("\npredicted hotspots:\n");
  for (const auto& h : hotspots)
    std::printf("  %-22s line %-4d mean %.1f%%\n", h.functionName.c_str(),
                h.sourceLine, h.meanPredicted);

  const auto hints =
      core::adviseResolution(baseline.design, hotspots, {});
  std::printf("\nadvisor says:\n");
  for (const auto& hint : hints)
    std::printf("  [%s] %s\n",
                std::string(core::resolutionKindName(hint.kind)).c_str(),
                hint.message.c_str());

  // Step 1: apply the advisor's remove-inline hint.
  std::printf("\n== step 1: remove inlining of the classifiers ==\n");
  apps::FaceDetectionConfig step1;
  step1.inlineClassifiers = false;
  auto notInline = core::runFlow(apps::faceDetection(step1), device, {});
  report("not-inline", notInline);

  // Step 2: replicate the shared window data per classifier group.
  std::printf("\n== step 2: replicate the shared input data ==\n");
  apps::FaceDetectionConfig step2 = step1;
  step2.replicateWindowArray = true;
  auto replication = core::runFlow(apps::faceDetection(step2), device, {});
  report("replication", replication);

  std::printf("\nsummary (paper Table VI trajectory):\n");
  std::printf("  congested tiles: %zu -> %zu -> %zu\n",
              baseline.congestedTiles, notInline.congestedTiles,
              replication.congestedTiles);
  std::printf("  Fmax:            %.1f -> %.1f -> %.1f MHz\n",
              baseline.maxFrequencyMhz, notInline.maxFrequencyMhz,
              replication.maxFrequencyMhz);
  return 0;
}
