// Building your own kernel against the IR API: a small FIR filter, taken
// through directives, HLS synthesis, implementation and back-tracing. Shows
// the pieces a user composes when their design is not one of the bundled
// Rosetta-style generators.
#include <cstdio>

#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "ir/builder.hpp"
#include "trace/backtrace.hpp"

using namespace hcp;

namespace {

/// 16-tap FIR filter: y[n] = sum(c[k] * x[n-k]). The delay line lives in a
/// completely-partitioned array; the tap loop is fully unrolled.
apps::AppDesign buildFir() {
  apps::AppDesign design;
  design.name = "fir16";
  design.module = std::make_unique<ir::Module>("fir16");

  auto fn = std::make_unique<ir::Function>("fir");
  {
    ir::Builder b(*fn);
    b.atLine(1);
    const auto xIn = b.inPort("x", 16);
    const auto yOut = b.outPort("y", 32);
    b.atLine(2);
    const auto delayLine = b.array("delay_line", 16, 16);

    b.atLine(4);
    b.beginLoop("samples", 1024);
    const auto x = b.readPort(xIn);
    // Shift the delay line (structural: one store per stage).
    b.atLine(5);
    b.beginLoop("shift", 16);
    const auto idx = b.constant(0, 5);
    const auto stage = b.load(delayLine, idx);
    b.store(delayLine, idx, stage);
    b.endLoop();
    b.atLine(6);
    b.store(delayLine, b.constant(0, 5), x);

    // Tap loop: multiply-accumulate tree.
    b.atLine(8);
    b.beginLoop("taps", 16);
    const auto tapIdx = b.constant(0, 5);
    const auto tap = b.load(delayLine, tapIdx);
    const auto coeff = b.constant(7, 8);
    const auto prod = b.mul(b.trunc(tap, 9), coeff);  // LUT multiplier
    b.endLoop();
    b.atLine(10);
    const auto acc = b.zext(prod, 32);
    b.endLoop();
    b.atLine(12);
    b.writePort(yOut, acc);
    b.ret();
  }
  design.module->addFunction(std::move(fn));
  design.module->setTop("fir");

  // Directives: pipeline the sample loop, unroll shift/taps fully,
  // registers for the delay line.
  design.directives.pipeline("fir", "samples", 1)
      .unroll("fir", "shift", 16)
      .unroll("fir", "taps", 16)
      .partitionComplete("fir", "delay_line");
  return design;
}

}  // namespace

int main() {
  const auto device = fpga::Device::xc7z020like();
  auto fir = buildFir();
  std::printf("fir16: %zu IR ops before directives\n",
              fir.module->top().numOps());

  auto flow = core::runFlow(std::move(fir), device, {});
  std::printf("after directives + synthesis: %zu ops, latency %llu cycles, "
              "estimated clock %.2f ns\n",
              flow.design.topFunction().numOps(),
              static_cast<unsigned long long>(flow.latencyCycles),
              flow.design.top().report.estimatedClockNs);
  std::printf("implemented: %zu cells, %zu nets, Fmax %.1f MHz, "
              "max cong V/H %.1f/%.1f%%\n",
              flow.rtl.netlist.numCells(), flow.rtl.netlist.numNets(),
              flow.maxFrequencyMhz, flow.maxVCongestion,
              flow.maxHCongestion);

  // Back-trace a few cells to their source lines.
  std::printf("\nsample back-traces:\n");
  std::size_t shown = 0;
  for (rtl::CellId c = 0;
       c < flow.rtl.netlist.numCells() && shown < 4; ++c) {
    if (flow.rtl.netlist.cell(c).ops.empty()) continue;
    std::printf("  %s\n",
                trace::describeCell(flow.rtl, flow.impl,
                                    *flow.design.module, c)
                    .c_str());
    ++shown;
  }

  // The per-op samples are ready for dataset building / training.
  const auto data = core::buildDataset(flow, {});
  std::printf("\ndataset contribution: %zu samples x %zu features\n",
              data.vertical.size(), data.vertical.numFeatures());
  return 0;
}
