// Quickstart: the full train-and-predict loop of the paper in ~60 lines.
//
//  1. Run the C-to-FPGA flow on a training design (one expensive PAR run).
//  2. Back-trace per-CLB congestion onto IR operations and build the dataset.
//  3. Train the GBRT congestion predictor.
//  4. For a *new* design, predict per-operation congestion straight from HLS
//     information — no place-and-route — and print the hottest source lines.
#include <cstdio>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"

int main() {
  using namespace hcp;
  const auto device = fpga::Device::xc7z020like();

  // 1. One complete flow (HLS -> RTL -> pack/place/route -> back-trace).
  std::printf("running the training flow (digit recognition + spam)...\n");
  auto trainingFlow =
      core::runFlow(apps::digitSpamCombined(), device, {});
  std::printf("  implemented: Fmax %.1f MHz, max congestion V %.1f%% / "
              "H %.1f%%, %zu tiles over 100%%\n",
              trainingFlow.maxFrequencyMhz, trainingFlow.maxVCongestion,
              trainingFlow.maxHCongestion, trainingFlow.congestedTiles);

  // 2. Dataset: 302 features per op, labels from the congestion map.
  const auto dataset = core::buildDataset(trainingFlow, {});
  std::printf("  dataset: %zu samples, %zu features, %.1f%% marginal ops "
              "filtered\n",
              dataset.vertical.size(), dataset.vertical.numFeatures(),
              100.0 * dataset.filterStats.fraction());

  // 3. Train the predictor (GBRT, the paper's best model).
  core::CongestionPredictor predictor{core::PredictorOptions{}};
  predictor.train(dataset);
  std::printf("trained GBRT models for V / H / avg congestion\n\n");

  // 4. Predict on a new design WITHOUT implementing it: synthesize only.
  std::printf("predicting congestion for face_detection (HLS only, no "
              "place-and-route)...\n");
  auto newApp = apps::faceDetection({});
  const auto newDesign =
      hls::synthesize(std::move(newApp.module), newApp.directives, {});
  const auto hotspots = predictor.findHotspots(newDesign, {}, 5);
  std::printf("  top predicted congestion hotspots:\n");
  for (const auto& h : hotspots) {
    std::printf("    %-24s line %-4d  %4zu ops  mean %.1f%%  max %.1f%%\n",
                h.functionName.c_str(), h.sourceLine, h.numOps,
                h.meanPredicted, h.maxPredicted);
  }
  std::printf("\nresolve these at the source level (see the "
              "congestion_advisor example) instead of iterating through "
              "hours of place-and-route.\n");
  return 0;
}
