// compare-reports is CI's regression gate, so its exit codes are contract:
// 0 = clean diff, 1 = regression, 4 = malformed input or wrong schema.
// These tests drive compareReportFiles() on hand-built reports covering
// every verdict.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"
#include "support/report_diff.hpp"
#include "support/telemetry.hpp"
#include "test_util.hpp"

namespace hcp::support::report_diff {
namespace {

/// Writes `content` to a temp file unique to (test, tag) — ctest runs the
/// tests of this suite as concurrent processes — removed on destruction.
class TempFile : public hcp::test::TempFile {
 public:
  TempFile(const std::string& tag, const std::string& content)
      : hcp::test::TempFile(
            hcp::test::uniqueStem("hcp_report_diff", tag) + ".json", content) {}
};

/// A minimal schema-valid report. `wallMs` and one counter are the knobs
/// the tests turn.
std::string makeReport(double wallMs, int flowsRun, int histCount = 3) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": " << telemetry::kReportSchemaVersion << ",\n"
     << "  \"total_wall_ms\": " << wallMs << ",\n"
     << "  \"spans\": [{\"path\": \"flow\", \"depth\": 0, \"count\": 1, "
        "\"wall_ms\": "
     << wallMs << "}],\n"
     << "  \"counters\": {\"flows_run\": " << flowsRun << "},\n"
     << "  \"histograms\": {\"net_fanout\": {\"count\": " << histCount
     << ", \"sum\": 6, \"min\": 1, \"max\": 3, \"p50\": 2, \"p90\": 3, "
        "\"p99\": 3}}\n"
     << "}\n";
  return os.str();
}

int run(const std::string& base, const std::string& fresh,
        const Options& options, std::string* outText = nullptr) {
  TempFile baseFile("base", base);
  TempFile newFile("new", fresh);
  std::ostringstream os;
  const int code =
      compareReportFiles(baseFile.path(), newFile.path(), options, os);
  if (outText != nullptr) *outText = os.str();
  return code;
}

TEST(ReportDiff, IdenticalReportsPass) {
  const std::string r = makeReport(100.0, 5);
  Options opts;
  opts.requireCountersEqual = true;
  opts.maxWallRegressPct = 0.0;
  std::string text;
  EXPECT_EQ(run(r, r, opts, &text), kExitOk);
  EXPECT_NE(text.find("compare-reports: OK"), std::string::npos);
}

TEST(ReportDiff, WallTimeGateTriggersAboveTolerance) {
  Options opts;
  opts.maxWallRegressPct = 10.0;
  // +5% passes, +25% fails.
  EXPECT_EQ(run(makeReport(100.0, 5), makeReport(105.0, 5), opts), kExitOk);
  std::string text;
  EXPECT_EQ(run(makeReport(100.0, 5), makeReport(125.0, 5), opts, &text),
            kExitRegression);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("total_wall_ms"), std::string::npos);
}

TEST(ReportDiff, WallTimeUngatedWithoutLimit) {
  Options opts;  // maxWallRegressPct < 0: informational only
  EXPECT_EQ(run(makeReport(100.0, 5), makeReport(900.0, 5), opts), kExitOk);
}

TEST(ReportDiff, CounterDriftFailsOnlyWhenGated) {
  const std::string base = makeReport(100.0, 5);
  const std::string drifted = makeReport(100.0, 6);
  Options loose;
  std::string text;
  EXPECT_EQ(run(base, drifted, loose, &text), kExitOk);
  EXPECT_NE(text.find("** CHANGED"), std::string::npos);  // still flagged
  Options strict;
  strict.requireCountersEqual = true;
  EXPECT_EQ(run(base, drifted, strict, &text), kExitRegression);
  EXPECT_NE(text.find("counter totals differ"), std::string::npos);
}

TEST(ReportDiff, HistogramCountDriftFailsWhenGated) {
  Options strict;
  strict.requireCountersEqual = true;
  std::string text;
  EXPECT_EQ(run(makeReport(100.0, 5, 3), makeReport(100.0, 5, 4), strict,
                &text),
            kExitRegression);
  EXPECT_NE(text.find("histogram observation counts differ"),
            std::string::npos);
}

TEST(ReportDiff, MalformedJsonIsBadInput) {
  std::string text;
  EXPECT_EQ(run("{ not json", makeReport(1.0, 1), {}, &text), kExitBadInput);
  EXPECT_NE(text.find("bad input"), std::string::npos);
  EXPECT_EQ(run(makeReport(1.0, 1), "[1, 2, 3,]", {}), kExitBadInput);
}

TEST(ReportDiff, MissingSchemaVersionIsBadInput) {
  std::string text;
  EXPECT_EQ(run("{\"total_wall_ms\": 1, \"spans\": [], \"counters\": {}, "
                "\"histograms\": {}}",
                makeReport(1.0, 1), {}, &text),
            kExitBadInput);
  EXPECT_NE(text.find("schema_version"), std::string::npos);
}

TEST(ReportDiff, WrongSchemaVersionIsBadInput) {
  std::string futuristic = makeReport(1.0, 1);
  const std::string needle =
      "\"schema_version\": " +
      std::to_string(telemetry::kReportSchemaVersion);
  futuristic.replace(futuristic.find(needle), needle.size(),
                     "\"schema_version\": 999");
  std::string text;
  EXPECT_EQ(run(makeReport(1.0, 1), futuristic, {}, &text), kExitBadInput);
  EXPECT_NE(text.find("unsupported schema_version"), std::string::npos);
}

TEST(ReportDiff, MissingFileIsBadInput) {
  std::ostringstream os;
  EXPECT_EQ(compareReportFiles("/nonexistent/base.json",
                               "/nonexistent/new.json", {}, os),
            kExitBadInput);
}

TEST(ReportDiff, BenchOutSummaryIsValidJson) {
  TempFile baseFile("bo_base", makeReport(100.0, 5));
  TempFile newFile("bo_new", makeReport(120.0, 6));
  const std::string benchPath =
      std::string(::testing::TempDir()) + "hcp_report_diff_bench_out.json";
  Options opts;
  opts.maxWallRegressPct = 10.0;
  opts.requireCountersEqual = true;
  opts.benchOutPath = benchPath;
  std::ostringstream os;
  EXPECT_EQ(compareReportFiles(baseFile.path(), newFile.path(), opts, os),
            kExitRegression);

  const json::Value bench = json::parseFile(benchPath);  // must be strict JSON
  std::remove(benchPath.c_str());
  EXPECT_FALSE(bench.find("ok")->asBool());
  EXPECT_FALSE(bench.find("counters_equal")->asBool());
  EXPECT_DOUBLE_EQ(bench.find("total_wall_ms")->find("base")->asNumber(),
                   100.0);
  EXPECT_DOUBLE_EQ(bench.find("total_wall_ms")->find("new")->asNumber(),
                   120.0);
  EXPECT_GE(bench.find("regressions")->array.size(), 2u);
}

}  // namespace
}  // namespace hcp::support::report_diff
