// Trace sink contract: span begin/end events land in per-thread buffers,
// saturation drops-and-counts instead of reallocating, and the exported
// timeline is strictly valid Chrome trace-event JSON — including span
// names chosen to break naive escaping. Complete ("X") events carry their
// duration and request correlation id, and auto-flush rewrites a configured
// trace file at quiescent points without throwing on I/O failure.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "support/failpoint.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "support/tracing.hpp"

namespace hcp::support::tracing {
namespace {

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::setEnabled(true);
    telemetry::reset();
    setBufferCapacity(kDefaultBufferCapacity);
    setEnabled(true);
    reset();
  }
  void TearDown() override {
    setEnabled(false);
    reset();
    setBufferCapacity(kDefaultBufferCapacity);
    telemetry::setEnabled(false);
    telemetry::reset();
  }

  static json::Value exportAndParse(const char* tool = "unit_test",
                                    const char* command = "trace") {
    std::ostringstream os;
    TraceMeta meta;
    meta.tool = tool;
    meta.command = command;
    writeChromeTrace(os, meta);
    return json::parse(os.str());  // throws if not strictly valid
  }
};

TEST_F(TracingTest, SpansBecomeBeginEndEventPairs) {
  {
    HCP_SPAN("outer");
    { HCP_SPAN("inner"); }
  }
  const json::Value doc = exportAndParse();
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::size_t begins = 0, ends = 0;
  bool sawOuter = false, sawInnerPath = false;
  for (const json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->asString();
    if (ph == "M") continue;  // metadata (process/thread names)
    const std::string& name = e.find("name")->asString();
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (name == "outer") sawOuter = true;
    if (name == "outer/inner") sawInnerPath = true;
    EXPECT_DOUBLE_EQ(e.find("args")->find("task")->asNumber(), -1.0);
    EXPECT_GE(e.find("ts")->asNumber(), 0.0);
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_TRUE(sawOuter);
  EXPECT_TRUE(sawInnerPath);  // event names are full span paths
  EXPECT_DOUBLE_EQ(doc.find("otherData")->find("dropped_events")->asNumber(),
                   0.0);
}

TEST_F(TracingTest, ExportCarriesMetaAndSchemaVersion) {
  { HCP_SPAN("s"); }
  const json::Value doc = exportAndParse("mytool", "mycmd");
  const json::Value* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("tool")->asString(), "mytool");
  EXPECT_EQ(other->find("command")->asString(), "mycmd");
  EXPECT_DOUBLE_EQ(other->find("schema_version")->asNumber(),
                   telemetry::kReportSchemaVersion);
}

TEST_F(TracingTest, EvilSpanNamesSurviveJsonEscaping) {
  const std::string evil = "q\"b\\s\nnl\ttab\x01ctrl";
  { telemetry::ScopedSpan span(evil); }
  const json::Value doc = exportAndParse();
  bool found = false;
  for (const json::Value& e : doc.find("traceEvents")->array) {
    if (e.find("ph")->asString() == "M") continue;
    if (e.find("name")->asString() == evil) found = true;
  }
  EXPECT_TRUE(found) << "evil span name did not round-trip";
}

TEST_F(TracingTest, FullBufferDropsNewestAndCounts) {
  constexpr std::size_t kCap = 8;
  setBufferCapacity(kCap);
  reset();  // re-applies the capacity to this thread's existing buffer

  constexpr std::size_t kSpans = 20;  // 2 events each
  for (std::size_t i = 0; i < kSpans; ++i) {
    HCP_SPAN("victim");
  }
  EXPECT_EQ(droppedEvents(), 2 * kSpans - kCap);

  const json::Value doc = exportAndParse();
  std::size_t kept = 0;
  for (const json::Value& e : doc.find("traceEvents")->array)
    if (e.find("ph")->asString() != "M") ++kept;
  EXPECT_EQ(kept, kCap);
  EXPECT_DOUBLE_EQ(doc.find("otherData")->find("dropped_events")->asNumber(),
                   double(2 * kSpans - kCap));
}

TEST_F(TracingTest, ResetClearsEventsAndDropCounter) {
  setBufferCapacity(2);
  reset();
  for (int i = 0; i < 4; ++i) {
    HCP_SPAN("x");
  }
  EXPECT_GT(droppedEvents(), 0u);
  setBufferCapacity(kDefaultBufferCapacity);
  reset();
  EXPECT_EQ(droppedEvents(), 0u);
  const json::Value doc = exportAndParse();
  for (const json::Value& e : doc.find("traceEvents")->array)
    EXPECT_EQ(e.find("ph")->asString(), "M");  // only metadata remains
}

TEST_F(TracingTest, ParallelSpansRecordTaskIndexAndStayValidJson) {
  ScopedThreadLimit limit(4);
  parallelFor(0, 32, 1, [](std::size_t) { HCP_SPAN("task_span"); });

  const json::Value doc = exportAndParse();
  std::size_t begins = 0, ends = 0;
  std::set<double> tasks;
  for (const json::Value& e : doc.find("traceEvents")->array) {
    const std::string& ph = e.find("ph")->asString();
    if (ph == "M") continue;
    if (e.find("name")->asString() != "task_span") continue;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    tasks.insert(e.find("args")->find("task")->asNumber());
  }
  EXPECT_EQ(begins, 32u);
  EXPECT_EQ(ends, 32u);
  EXPECT_EQ(tasks.size(), 32u);  // every pool task index 0..31 shows up
  EXPECT_EQ(*tasks.begin(), 0.0);
  EXPECT_EQ(*tasks.rbegin(), 31.0);
}

TEST_F(TracingTest, DisabledTracingRecordsNothing) {
  setEnabled(false);
  {
    HCP_SPAN("ghost");
  }
  setEnabled(true);
  const json::Value doc = exportAndParse();
  for (const json::Value& e : doc.find("traceEvents")->array)
    EXPECT_EQ(e.find("ph")->asString(), "M");
}

TEST_F(TracingTest, CompleteEventsCarryDurationAndCorrelation) {
  const std::string evil = "r\"id\\with\nnewline";
  recordComplete("serve/request", 1000, 2500, evil);
  recordComplete("serve/request/queue_wait", 1000, 0, "plain");
  recordComplete("no/correlation", 500, 100, "");

  const json::Value doc = exportAndParse();
  std::size_t complete = 0;
  bool sawEvil = false, sawZeroDur = false, sawBare = false;
  for (const json::Value& e : doc.find("traceEvents")->array) {
    if (e.find("ph")->asString() != "X") continue;
    ++complete;
    ASSERT_NE(e.find("dur"), nullptr);
    EXPECT_GE(e.find("dur")->asNumber(), 0.0);
    const json::Value* request = e.find("args")->find("request");
    const std::string& name = e.find("name")->asString();
    if (name == "serve/request") {
      ASSERT_NE(request, nullptr);
      sawEvil = request->asString() == evil;
      EXPECT_DOUBLE_EQ(e.find("dur")->asNumber(), 2.5);  // 2500 ns in µs
    } else if (name == "serve/request/queue_wait") {
      sawZeroDur = e.find("dur")->asNumber() == 0.0;
    } else if (name == "no/correlation") {
      // An empty correlation id omits args.request entirely.
      sawBare = request == nullptr;
    }
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_TRUE(sawEvil) << "correlation id did not survive JSON escaping";
  EXPECT_TRUE(sawZeroDur);
  EXPECT_TRUE(sawBare);
}

TEST_F(TracingTest, AutoFlushRewritesConfiguredFileAndDegradesOnFailure) {
  namespace fs = std::filesystem;
  const std::string path =
      std::string(::testing::TempDir()) + "autoflush_trace.json";
  fs::remove(path);

  // Unconfigured: a successful no-op.
  EXPECT_TRUE(autoFlush());
  EXPECT_FALSE(fs::exists(path));

  TraceMeta meta;
  meta.tool = "unit_test";
  meta.command = "autoflush";
  configureAutoFlush(path, meta);

  recordComplete("first", 10, 5, "a");
  ASSERT_TRUE(autoFlush());
  ASSERT_TRUE(fs::exists(path));
  auto slurp = [&] {
    std::ifstream in(path);
    std::stringstream body;
    body << in.rdbuf();
    return body.str();
  };
  const json::Value one = json::parse(slurp());
  EXPECT_EQ(one.find("otherData")->find("tool")->asString(), "unit_test");

  // A second flush rewrites the whole ring: both events now present.
  recordComplete("second", 20, 5, "b");
  ASSERT_TRUE(autoFlush());
  const json::Value two = json::parse(slurp());
  std::size_t complete = 0;
  for (const json::Value& e : two.find("traceEvents")->array)
    if (e.find("ph")->asString() == "X") ++complete;
  EXPECT_EQ(complete, 2u);

  // I/O failure degrades (returns false, counts) instead of throwing, and
  // the previous file survives untouched under the atomic-write contract.
  const std::string before = slurp();
  {
    failpoint::ScopedFailpoints fp("trace.write");
    EXPECT_FALSE(autoFlush());
  }
  EXPECT_EQ(slurp(), before);
  EXPECT_GE(
      telemetry::snapshot().counter(telemetry::Counter::TraceFlushError), 1u);

  configureAutoFlush("", TraceMeta{});  // disarm for the tests that follow
  fs::remove(path);
}

}  // namespace
}  // namespace hcp::support::tracing
