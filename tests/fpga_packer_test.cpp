#include <gtest/gtest.h>

#include <set>

#include "fpga/packer.hpp"

namespace hcp::fpga {
namespace {

using rtl::Cell;
using rtl::CellId;
using rtl::CellType;
using rtl::Netlist;

/// Builds a netlist of `n` small LUT cells in a chain, plus optional extras.
Netlist chainNetlist(std::size_t n, double lutPerCell = 2.0) {
  Netlist nl("t");
  const auto inst = nl.addInstance({"top", 0, 0});
  CellId prev = rtl::kInvalidCell;
  for (std::size_t i = 0; i < n; ++i) {
    Cell c;
    c.name = "c" + std::to_string(i);
    c.type = CellType::Fu;
    c.width = 8;
    c.res.lut = lutPerCell;
    c.instance = inst;
    const CellId id = nl.addCell(std::move(c));
    if (prev != rtl::kInvalidCell) {
      rtl::Net net;
      net.name = "n" + std::to_string(i);
      net.width = 8;
      net.driver = prev;
      net.sinks = {id};
      nl.addNet(std::move(net));
    }
    prev = id;
  }
  return nl;
}

TEST(Packer, ConnectedSmallCellsCluster) {
  const auto nl = chainNetlist(8, 2.0);
  const auto packing = pack(nl, Device::xc7z020like());
  // 8 cells x 2 LUT = 16 LUT; a CLB holds 8 -> at least 2, at most 8
  // clusters, and clustering should do better than 1 per cell.
  EXPECT_LT(packing.clusters.size(), 8u);
  EXPECT_GE(packing.clusters.size(), 2u);
}

TEST(Packer, EveryCellAssigned) {
  const auto nl = chainNetlist(10);
  const auto packing = pack(nl, Device::xc7z020like());
  for (CellId c = 0; c < nl.numCells(); ++c)
    EXPECT_FALSE(packing.clustersOfCell[c].empty());
}

TEST(Packer, OversizedCellSplitsIntoParts) {
  Netlist nl("t");
  const auto inst = nl.addInstance({"top", 0, 0});
  Cell big;
  big.name = "big";
  big.type = CellType::Fu;
  big.width = 64;
  big.res.lut = 40.0;  // 5 CLBs worth
  big.instance = inst;
  nl.addCell(std::move(big));
  const auto packing = pack(nl, Device::xc7z020like());
  EXPECT_EQ(packing.clustersOfCell[0].size(), 5u);
  // Parts are chained so placement keeps them together.
  EXPECT_EQ(packing.nets.size(), 4u);
}

TEST(Packer, SiteClassesRespected) {
  Netlist nl("t");
  const auto inst = nl.addInstance({"top", 0, 0});
  Cell dsp;
  dsp.name = "dsp";
  dsp.res.dsp = 1.0;
  dsp.instance = inst;
  nl.addCell(std::move(dsp));
  Cell bram;
  bram.name = "bram";
  bram.type = CellType::MemoryBank;
  bram.res.bram = 1.0;
  bram.instance = inst;
  nl.addCell(std::move(bram));
  Cell pad;
  pad.name = "pad";
  pad.type = CellType::Pad;
  pad.instance = inst;
  nl.addCell(std::move(pad));
  const auto packing = pack(nl, Device::xc7z020like());
  std::multiset<TileType> sites;
  for (const auto& c : packing.clusters) sites.insert(c.site);
  EXPECT_EQ(sites.count(TileType::Dsp), 1u);
  EXPECT_EQ(sites.count(TileType::Bram), 1u);
  EXPECT_EQ(sites.count(TileType::Io), 1u);
}

TEST(Packer, PinCapLimitsClusterFanConcentration) {
  // Star: one hub cell driving 60 tiny sinks. Without a pin cap, all sinks
  // would fuse into the hub's cluster.
  Netlist nl("t");
  const auto inst = nl.addInstance({"top", 0, 0});
  Cell hub;
  hub.name = "hub";
  hub.res.lut = 1.0;
  hub.instance = inst;
  const CellId h = nl.addCell(std::move(hub));
  for (int i = 0; i < 60; ++i) {
    Cell c;
    c.name = "s" + std::to_string(i);
    c.res.lut = 0.1;
    c.instance = inst;
    const CellId id = nl.addCell(std::move(c));
    rtl::Net net;
    net.name = "n" + std::to_string(i);
    net.width = 16;
    net.driver = h;
    net.sinks = {id};
    nl.addNet(std::move(net));
  }
  const auto packing = pack(nl, Device::xc7z020like());
  for (const auto& cluster : packing.clusters)
    EXPECT_LE(cluster.cells.size(), 12u)
        << "pin cap should stop unbounded absorption";
  EXPECT_GT(packing.clusters.size(), 5u);
}

TEST(Packer, IntraClusterNetsAbsorbed) {
  const auto nl = chainNetlist(4, 1.0);  // all fit one CLB
  const auto packing = pack(nl, Device::xc7z020like());
  if (packing.clusters.size() == 1) {
    EXPECT_TRUE(packing.nets.empty());
  } else {
    EXPECT_LT(packing.nets.size(), nl.numNets());
  }
}

TEST(Packer, OverCapacityThrows) {
  // More DSP cells than DSP tiles.
  Netlist nl("t");
  const auto inst = nl.addInstance({"top", 0, 0});
  const auto dev = Device::xc7z020like();
  const std::size_t dspTiles = dev.tilesOfType(TileType::Dsp).size();
  for (std::size_t i = 0; i < dspTiles + 1; ++i) {
    Cell c;
    c.name = "d" + std::to_string(i);
    c.res.dsp = 1.0;
    c.instance = inst;
    nl.addCell(std::move(c));
  }
  EXPECT_THROW(pack(nl, dev), hcp::Error);
}

TEST(Packer, ClusterResourcesWithinTileCapacity) {
  const auto nl = chainNetlist(40, 3.0);
  const auto dev = Device::xc7z020like();
  const auto packing = pack(nl, dev);
  const auto clbCap = dev.tileCapacity(12, 10);
  for (const auto& cluster : packing.clusters) {
    if (cluster.site != TileType::Clb) continue;
    EXPECT_LE(cluster.lut, clbCap.lut + 1e-9);
    EXPECT_LE(cluster.ff, clbCap.ff + 1e-9);
  }
}

}  // namespace
}  // namespace hcp::fpga
