#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"

namespace hcp::ml {
namespace {

TEST(Dataset, AddAndSubset) {
  Dataset d(2);
  d.add({1, 2}, 10);
  d.add({3, 4}, 20);
  d.add({5, 6}, 30);
  const Dataset s = d.subset({2, 0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.target(0), 30);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 1);
}

TEST(Dataset, ArityEnforced) {
  Dataset d(3);
  EXPECT_THROW(d.add({1, 2}, 0), hcp::Error);
}

TEST(Dataset, MergeAppends) {
  Dataset a(1), b(1);
  a.add({1}, 1);
  b.add({2}, 2);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Dataset, MergeRejectsFeatureCountMismatch) {
  // Before the check, merging a 3-feature dataset into a 2-feature one
  // produced rows whose length disagreed with numFeatures() — every later
  // row() consumer indexed out of step.
  Dataset a(2), b(3);
  a.add({1, 2}, 1);
  b.add({1, 2, 3}, 2);
  try {
    a.merge(b);
    FAIL() << "mismatched merge not rejected";
  } catch (const hcp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("feature-count mismatch"),
              std::string::npos);
  }
  EXPECT_EQ(a.size(), 1u);  // the failed merge appended nothing
}

TEST(Dataset, MergeIntoViewRejected) {
  Dataset base(1);
  base.add({1}, 1);
  base.add({2}, 2);
  Dataset view = base.subsetView({0});
  Dataset other(1);
  other.add({3}, 3);
  EXPECT_THROW(view.merge(other), hcp::Error);
}

TEST(Dataset, ViewUseAfterBaseDestroyedThrows) {
  Dataset view(1);
  {
    Dataset base(1);
    base.add({1}, 10);
    base.add({2}, 20);
    view = base.subsetView({1, 0});
    EXPECT_DOUBLE_EQ(view.row(0)[0], 2);  // fine while the base lives
  }
  try {
    (void)view.row(0);
    FAIL() << "dangling view read not rejected";
  } catch (const hcp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("subset view used after"),
              std::string::npos);
  }
}

TEST(Dataset, ViewUseAfterBaseMovedThrows) {
  Dataset base(1);
  base.add({1}, 10);
  const Dataset view = base.subsetView({0});
  const Dataset stolen = std::move(base);
  EXPECT_DOUBLE_EQ(stolen.row(0)[0], 1);
  EXPECT_THROW((void)view.row(0), hcp::Error);
}

TEST(Dataset, ViewUseAfterBaseReassignedThrows) {
  Dataset base(1);
  base.add({1}, 10);
  const Dataset view = base.subsetView({0});
  base = Dataset(1);  // the rows the view pointed into are gone
  EXPECT_THROW((void)view.row(0), hcp::Error);
}

TEST(Dataset, CopiedBaseKeepsItsOwnViewsAlive) {
  Dataset base(1);
  base.add({1}, 10);
  const Dataset view = base.subsetView({0});
  const Dataset copy = base;  // deep copy; does not disturb `view`
  EXPECT_DOUBLE_EQ(copy.row(0)[0], 1);
  EXPECT_DOUBLE_EQ(view.row(0)[0], 1);
}

TEST(TrainTestSplit, DisjointAndComplete) {
  const Split split = trainTestSplit(100, 0.2, 42);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  for (std::size_t i : split.test) EXPECT_TRUE(all.insert(i).second);
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplit, DeterministicPerSeed) {
  const Split a = trainTestSplit(50, 0.3, 7);
  const Split b = trainTestSplit(50, 0.3, 7);
  EXPECT_EQ(a.test, b.test);
  const Split c = trainTestSplit(50, 0.3, 8);
  EXPECT_NE(a.test, c.test);
}

TEST(KFold, EveryIndexTestedExactlyOnce) {
  const auto folds = kFoldSplits(53, 10, 3);
  ASSERT_EQ(folds.size(), 10u);
  std::vector<int> tested(53, 0);
  for (const Split& f : folds) {
    EXPECT_EQ(f.train.size() + f.test.size(), 53u);
    for (std::size_t i : f.test) ++tested[i];
  }
  for (int t : tested) EXPECT_EQ(t, 1);
}

TEST(KFold, RequiresAtLeastTwoFolds) {
  EXPECT_THROW(kFoldSplits(10, 1, 0), hcp::Error);
  EXPECT_THROW(kFoldSplits(3, 5, 0), hcp::Error);
}

TEST(Scaler, StandardizesColumns) {
  StandardScaler s;
  s.fit(std::vector<std::vector<double>>{{0, 100}, {10, 300}});
  const auto z = s.transform({0, 100});
  EXPECT_NEAR(z[0], -1.0, 1e-9);
  EXPECT_NEAR(z[1], -1.0, 1e-9);
}

TEST(Scaler, ConstantColumnSafe) {
  StandardScaler s;
  s.fit(std::vector<std::vector<double>>{{5, 1}, {5, 2}});
  const auto z = s.transform({5, 1.5});
  EXPECT_DOUBLE_EQ(z[0], 0.0);  // no NaN/inf from zero variance
  EXPECT_TRUE(std::isfinite(z[1]));
}

// --- metrics --------------------------------------------------------------

TEST(Metrics, MaeAndMedae) {
  const std::vector<double> y{10, 20, 30, 40};
  const std::vector<double> p{12, 18, 30, 140};  // errors 2,2,0,100
  EXPECT_DOUBLE_EQ(meanAbsoluteError(y, p), 26.0);
  EXPECT_DOUBLE_EQ(medianAbsoluteError(y, p), 2.0);  // robust to the outlier
}

TEST(Metrics, RmsePenalizesOutliers) {
  const std::vector<double> y{0, 0};
  const std::vector<double> small{1, 1};
  const std::vector<double> spiky{0, 2};
  // Same MAE, different RMSE.
  EXPECT_DOUBLE_EQ(meanAbsoluteError(y, small), meanAbsoluteError(y, spiky));
  EXPECT_LT(rootMeanSquaredError(y, small), rootMeanSquaredError(y, spiky));
}

TEST(Metrics, R2PerfectAndMean) {
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(r2Score(y, y), 1.0);
  const std::vector<double> meanPred{2, 2, 2};
  EXPECT_NEAR(r2Score(y, meanPred), 0.0, 1e-12);
}

TEST(Metrics, EmptyInputThrows) {
  const std::vector<double> e;
  EXPECT_THROW(meanAbsoluteError(e, e), hcp::Error);
}

}  // namespace
}  // namespace hcp::ml
