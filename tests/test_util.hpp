// Shared test scaffolding. Every suite used to carry its own copy of the
// temp-path / slurp helpers; they live here once so their semantics (unique
// per-test paths, removal on destruction, binary-exact reads) cannot drift
// apart between suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace hcp::test {

/// A unique scratch file path under the gtest temp dir, removed on
/// destruction. The file is not created unless content is given — some
/// tests need only the name. Suites whose tests run as concurrent ctest
/// processes should fold the test name into `stem` (see uniqueStem).
class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_(std::string(::testing::TempDir()) + stem) {}
  TempFile(const std::string& stem, const std::string& content)
      : TempFile(stem) {
    std::ofstream os(path_, std::ios::binary);
    os << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Fresh scratch directory under the gtest temp dir, removed on
/// destruction. Cleared but NOT created by default — several suites test
/// that the code under test creates its own directory; pass create=true
/// when the directory must pre-exist.
class TempDir {
 public:
  explicit TempDir(const std::string& stem, bool create = false)
      : dir_(std::string(::testing::TempDir()) + stem) {
    std::filesystem::remove_all(dir_);
    if (create) std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

/// `<prefix>_<current test name>_<tag>` — a stem that stays unique when
/// ctest runs the suite's tests as concurrent processes.
inline std::string uniqueStem(const std::string& prefix,
                              const std::string& tag) {
  return prefix + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "_" + tag;
}

/// Whole file as bytes (binary mode: what was written is what compares).
inline std::string slurpFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Overwrites `path` with exactly `bytes` (corruption-test primitive).
inline void writeRaw(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
}

}  // namespace hcp::test
