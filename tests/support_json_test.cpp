// The strict JSON parser guards the compare-reports gate and validates
// every report/trace the pipeline emits, so it must accept exactly
// RFC 8259 and nothing more: these tests pin both directions.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/json.hpp"

namespace hcp::support::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").isNull());
  EXPECT_TRUE(parse("true").asBool());
  EXPECT_FALSE(parse("false").asBool());
  EXPECT_DOUBLE_EQ(parse("0").asNumber(), 0.0);
  EXPECT_DOUBLE_EQ(parse("-0.5").asNumber(), -0.5);
  EXPECT_DOUBLE_EQ(parse("1e3").asNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").asNumber(), 0.025);
  EXPECT_EQ(parse("\"hi\"").asString(), "hi");
  EXPECT_TRUE(parse("  [ ]  ").isArray());
  EXPECT_TRUE(parse("{}").isObject());
}

TEST(JsonParse, RoundTripsDoublesAt17Digits) {
  // %.17g is how the report writer prints doubles: parsing must recover
  // the identical bit pattern.
  EXPECT_DOUBLE_EQ(parse("0.10000000000000001").asNumber(), 0.1);
  EXPECT_DOUBLE_EQ(parse("2.2204460492503131e-16").asNumber(),
                   2.2204460492503131e-16);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\nd\te\rf\bg\fh")").asString(),
            "a\"b\\c/d\nd\te\rf\bg\fh");
  EXPECT_EQ(parse(R"("\u0041\u00e9")").asString(), "A\xc3\xa9");
  EXPECT_EQ(parse(R"("\u0001")").asString(), std::string("\x01", 1));
  // Surrogate pair: U+1F600 (emoji) as \ud83d\ude00 -> 4-byte UTF-8.
  EXPECT_EQ(parse(R"("\ud83d\ude00")").asString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, NestedStructure) {
  const Value v = parse(R"({"a": [1, {"b": "x"}, null], "c": true})");
  ASSERT_TRUE(v.isObject());
  ASSERT_EQ(v.object.size(), 2u);
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].asNumber(), 1.0);
  EXPECT_EQ(a->array[1].find("b")->asString(), "x");
  EXPECT_TRUE(a->array[2].isNull());
  EXPECT_TRUE(v.find("c")->asBool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, ObjectPreservesSourceOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(JsonParse, RejectsNonStrictInput) {
  // Each of these is accepted by sloppy parsers; ours must throw.
  for (const char* bad : {
           "",                 // empty document
           "[1, 2,]",          // trailing comma (array)
           "{\"a\": 1,}",      // trailing comma (object)
           "{'a': 1}",         // single quotes
           "{a: 1}",           // unquoted key
           "// x\n1",          // comment
           "01",               // leading zero
           "+1",               // leading plus
           ".5",               // bare fraction
           "1.",               // trailing dot
           "1e",               // empty exponent
           "NaN", "Infinity", "-Infinity", "nan",
           "\"unterminated",   // unterminated string
           "\"bad \\x escape\"",
           "\"\\ud83d\"",      // lone high surrogate
           "\"\tliteral tab\"",  // unescaped control char
           "1 2",              // trailing garbage
           "{} []",            // trailing garbage after object
           "tru",              // truncated literal
           "[1 2]",            // missing comma
           "1e999",            // overflows double (must be finite)
       }) {
    EXPECT_THROW((void)parse(bad), hcp::Error) << "accepted: " << bad;
  }
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW((void)parse(deep), hcp::Error);
  // 32 levels is comfortably inside the limit.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_NO_THROW((void)parse(ok));
}

TEST(JsonParse, ErrorsCarryByteOffset) {
  try {
    (void)parse("[1, oops]");
    FAIL() << "expected hcp::Error";
  } catch (const hcp::Error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonParse, CheckedAccessorsThrowOnKindMismatch) {
  const Value v = parse("42");
  EXPECT_THROW((void)v.asString(), hcp::Error);
  EXPECT_THROW((void)v.asBool(), hcp::Error);
  EXPECT_THROW((void)parse("\"s\"").asNumber(), hcp::Error);
}

TEST(JsonParseFile, MissingFileThrows) {
  EXPECT_THROW((void)parseFile("/nonexistent/hcp_json_test.json"),
               hcp::Error);
}

}  // namespace
}  // namespace hcp::support::json
