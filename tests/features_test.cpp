#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/digit_spam.hpp"
#include "features/extractor.hpp"
#include "features/feature_registry.hpp"
#include "hls/design.hpp"
#include "ir/builder.hpp"

namespace hcp::features {
namespace {

TEST(Registry, ExactlyThreeHundredTwo) {
  // The paper extracts 302 features (§III-B).
  EXPECT_EQ(FeatureRegistry::instance().size(), 302u);
  EXPECT_EQ(kNumFeatures, 302u);
}

TEST(Registry, CategoryDecomposition) {
  const auto counts = FeatureRegistry::instance().categoryCounts();
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::Bitwidth)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::Interconnection)],
            18u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::Resource)], 100u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::Timing)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::ResourcePerDt)], 48u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::OperatorType)], 107u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::GlobalInfo)], 26u);
}

TEST(Registry, NamesUnique) {
  const auto& reg = FeatureRegistry::instance();
  std::set<std::string> names;
  for (const auto& f : reg.all())
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
}

TEST(Registry, IndexOfRoundTrips) {
  const auto& reg = FeatureRegistry::instance();
  EXPECT_EQ(reg.indexOf("bitwidth"), 0u);
  EXPECT_EQ(reg.info(reg.indexOf("delay_ns")).category, Category::Timing);
  EXPECT_THROW(reg.indexOf("no_such_feature"), hcp::Error);
}

// --- extractor on a hand-built design ------------------------------------

class ExtractorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mod = std::make_unique<ir::Module>("m");
    auto fn = std::make_unique<ir::Function>("top");
    {
      ir::Builder b(*fn);
      const auto in = b.inPort("i", 16);
      const auto out = b.outPort("o", 32);
      x_ = b.readPort(in);
      mul_ = b.mul(x_, x_);
      add_ = b.add(mul_, mul_);
      b.writePort(out, add_);
      b.ret();
    }
    mod->addFunction(std::move(fn));
    mod->setTop("top");
    design_ = new hls::SynthesizedDesign(
        hls::synthesize(std::move(mod), {}, {}));
    extractor_ = new FeatureExtractor(*design_, DeviceCaps{});
  }
  static void TearDownTestSuite() {
    delete extractor_;
    delete design_;
  }

  static hls::SynthesizedDesign* design_;
  static FeatureExtractor* extractor_;
  static ir::OpId x_, mul_, add_;

  double feat(ir::OpId op, const std::string& name) {
    const auto v = extractor_->extract(design_->module->topIndex(), op);
    return v[FeatureRegistry::instance().indexOf(name)];
  }
};

hls::SynthesizedDesign* ExtractorTest::design_ = nullptr;
FeatureExtractor* ExtractorTest::extractor_ = nullptr;
ir::OpId ExtractorTest::x_, ExtractorTest::mul_, ExtractorTest::add_;

TEST_F(ExtractorTest, VectorHas302Entries) {
  const auto v = extractor_->extract(design_->module->topIndex(), mul_);
  EXPECT_EQ(v.size(), kNumFeatures);
  for (double f : v) EXPECT_TRUE(std::isfinite(f));
}

TEST_F(ExtractorTest, BitwidthFeature) {
  EXPECT_DOUBLE_EQ(feat(mul_, "bitwidth"), 32.0);
  EXPECT_DOUBLE_EQ(feat(x_, "bitwidth"), 16.0);
}

TEST_F(ExtractorTest, FanInOutWires) {
  // mul reads x twice (2x16 = 32 wires in) and feeds add twice (2x32 out).
  EXPECT_DOUBLE_EQ(feat(mul_, "fan_in.1hop"), 32.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "fan_out.1hop"), 64.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "fan_sum.1hop"), 96.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "num_preds.1hop"), 1.0);
}

TEST_F(ExtractorTest, OneHotOperatorType) {
  EXPECT_DOUBLE_EQ(feat(mul_, "op.is.mul"), 1.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "op.is.add"), 0.0);
  // mul's neighbours: the readport (pred) and the add (succ).
  EXPECT_DOUBLE_EQ(feat(mul_, "op.nbr_count.add"), 1.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "op.nbr_count.readport"), 1.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "op.nbr_distinct_kinds"), 2.0);
}

TEST_F(ExtractorTest, TimingFeaturesMatchSchedule) {
  const auto& sched = design_->top().schedule;
  EXPECT_DOUBLE_EQ(feat(mul_, "delay_ns"), sched.ops[mul_].delayNs);
  EXPECT_DOUBLE_EQ(feat(mul_, "latency_cycles"), sched.ops[mul_].latency);
  EXPECT_GT(feat(mul_, "latency_cycles"), 0.0);  // 32-bit mul is multi-cycle
}

TEST_F(ExtractorTest, ResourceSelfUsage) {
  // The mul op owns its DSP unit entirely (no sharing here).
  EXPECT_GT(feat(mul_, "res.dsp.usage"), 0.0);
  EXPECT_DOUBLE_EQ(feat(mul_, "res.dsp.util_device"),
                   feat(mul_, "res.dsp.usage") / 220.0);
}

TEST_F(ExtractorTest, NeighbourResourceAggregates) {
  // add's one-hop pred set = {mul node}; its DSP usage appears there.
  EXPECT_DOUBLE_EQ(feat(add_, "res.dsp.usage.preds.1hop"),
                   feat(mul_, "res.dsp.usage"));
  EXPECT_DOUBLE_EQ(feat(add_, "res.dsp.usage.succs.1hop"), 0.0);
}

TEST_F(ExtractorTest, ResourcePerDtPositive) {
  EXPECT_GT(feat(add_, "res_dt.dsp.usage.preds.1hop"), 0.0);
}

TEST_F(ExtractorTest, GlobalFeaturesConstantAcrossOps) {
  EXPECT_DOUBLE_EQ(feat(mul_, "global.ftop.lut"),
                   feat(add_, "global.ftop.lut"));
  EXPECT_DOUBLE_EQ(feat(mul_, "global.fop.target_clock_ns"), 10.0);
}

TEST(ExtractorIntegration, WholeAppExtractsFiniteVectors) {
  auto app = apps::digitRecognition({.trainingSize = 64, .unroll = 4});
  auto design = hls::synthesize(std::move(app.module), app.directives, {});
  FeatureExtractor ex(design, DeviceCaps{});
  const auto f = design.module->topIndex();
  for (ir::OpId op = 0; op < design.module->function(f).numOps(); ++op) {
    const auto v = ex.extract(f, op);
    ASSERT_EQ(v.size(), kNumFeatures);
    for (double val : v) ASSERT_TRUE(std::isfinite(val));
  }
}

}  // namespace
}  // namespace hcp::features
