#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/passes.hpp"
#include "ir/verifier.hpp"

namespace hcp::ir {
namespace {

/// f(x) computed over constants — everything should fold away.
TEST(ConstantFold, FoldsArithmetic) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 16);
  const OpId a = b.constant(6, 8);
  const OpId c = b.constant(7, 8);
  const OpId prod = b.mul(a, c);
  const OpId sum = b.add(prod, b.constant(2, 8));
  b.writePort(out, sum);
  b.ret();

  const PassStats stats = constantFold(fn);
  EXPECT_GE(stats.opsFolded, 2u);
  EXPECT_EQ(fn.op(prod).opcode, Opcode::Const);
  EXPECT_EQ(fn.op(prod).constValue, 42);
  EXPECT_EQ(fn.op(sum).opcode, Opcode::Const);
  EXPECT_EQ(fn.op(sum).constValue, 44);
  EXPECT_TRUE(verify(fn).empty());
}

TEST(ConstantFold, DivisionByZeroNotFolded) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 8);
  const OpId q = b.div(b.constant(8, 8), b.constant(0, 8));
  b.writePort(out, q);
  b.ret();
  constantFold(fn);
  EXPECT_EQ(fn.op(q).opcode, Opcode::Div);
}

TEST(ConstantFold, ComparisonFolds) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 1);
  const OpId cmp = b.icmpLt(b.constant(3, 8), b.constant(9, 8));
  b.writePort(out, cmp);
  b.ret();
  constantFold(fn);
  EXPECT_EQ(fn.op(cmp).opcode, Opcode::Const);
  // 1-bit two's complement: true is stored as the canonical -1 (all ones).
  EXPECT_EQ(fn.op(cmp).constValue & 1, 1);
}

TEST(ConstantFold, TruncatesToWidth) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 4);
  // 15 + 1 = 16 truncated to 4 bits = 0.
  const OpId sum = b.make(Opcode::Add, 4,
                          {b.constant(15, 4), b.constant(1, 4)});
  b.writePort(out, sum);
  b.ret();
  constantFold(fn);
  EXPECT_EQ(fn.op(sum).constValue, 0);
}

TEST(Dce, RemovesUnusedOps) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  b.add(x, b.constant(1, 8));  // dead
  b.mul(x, x);                 // dead
  b.writePort(out, x);
  b.ret();

  const std::size_t before = fn.numOps();
  const PassStats stats = deadCodeElim(fn);
  EXPECT_EQ(stats.opsRemoved, 3u);  // add + its const + mul
  EXPECT_EQ(fn.numOps(), before - 3);
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Dce, KeepsSideEffects) {
  Function fn("f");
  Builder b(fn);
  const auto arr = b.array("m", 8, 8);
  const OpId idx = b.constant(0, 4);
  const OpId val = b.constant(9, 8);
  b.store(arr, idx, val);
  b.ret();
  deadCodeElim(fn);
  bool hasStore = false;
  for (OpId i = 0; i < fn.numOps(); ++i)
    hasStore |= fn.op(i).opcode == Opcode::Store;
  EXPECT_TRUE(hasStore);
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Dce, RemapsOperandsCorrectly) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  b.constant(99, 8);  // dead, sits before live ops
  const OpId x = b.readPort(in);
  const OpId y = b.add(x, x);
  b.writePort(out, y);
  b.ret();
  deadCodeElim(fn);
  EXPECT_TRUE(verify(fn).empty());
  // The add must still reference the (remapped) readport.
  for (OpId i = 0; i < fn.numOps(); ++i) {
    if (fn.op(i).opcode == Opcode::Add) {
      EXPECT_EQ(fn.op(fn.op(i).operands[0].producer).opcode,
                Opcode::ReadPort);
    }
  }
}

TEST(BitwidthReduce, TightensConstants) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 32);
  const OpId c = b.constant(3, 32);  // needs only 3 bits (two's complement)
  const OpId d = b.add(c, c);
  b.writePort(out, d);
  b.ret();
  const PassStats stats = bitwidthReduce(fn);
  EXPECT_GT(stats.bitsSaved, 0u);
  EXPECT_LE(fn.op(c).bitwidth, 3);
  EXPECT_TRUE(verify(fn).empty());
}

TEST(BitwidthReduce, DemandNarrowsThroughTrunc) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 32);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  const OpId sum = b.add(x, x);     // 32-bit, but only 8 bits consumed
  const OpId t = b.trunc(sum, 8);
  b.writePort(out, t);
  b.ret();
  bitwidthReduce(fn);
  EXPECT_EQ(fn.op(sum).bitwidth, 8);
  EXPECT_TRUE(verify(fn).empty());
}

TEST(BitwidthReduce, DoesNotNarrowThroughShift) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 32);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  // lshr needs the high bits: its input must not be narrowed by demand.
  const OpId sh = b.lshr(x, b.constant(24, 8));
  const OpId t = b.trunc(sh, 8);
  b.writePort(out, t);
  b.ret();
  bitwidthReduce(fn);
  EXPECT_EQ(fn.op(x).bitwidth, 32);
  EXPECT_TRUE(verify(fn).empty());
}

TEST(FrontendPasses, PipelineIsCleanAndIdempotent) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 32);
  const auto out = b.outPort("o", 16);
  const OpId x = b.readPort(in);
  const OpId k = b.mul(b.constant(3, 8), b.constant(5, 8));  // folds to 15
  const OpId y = b.add(x, k);
  b.add(y, y);  // dead
  b.writePort(out, b.trunc(y, 16));
  b.ret();

  runFrontendPasses(fn);
  EXPECT_TRUE(verify(fn).empty());
  const std::size_t opsAfter = fn.numOps();
  runFrontendPasses(fn);
  EXPECT_EQ(fn.numOps(), opsAfter);  // second run is a no-op
}

}  // namespace
}  // namespace hcp::ir
