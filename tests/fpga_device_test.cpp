#include <gtest/gtest.h>

#include "fpga/device.hpp"

namespace hcp::fpga {
namespace {

TEST(Device, Xc7z020Budgets) {
  const Device dev = Device::xc7z020like();
  // LUT budget within 10% of the real part's 53,200.
  EXPECT_NEAR(dev.totalLut(), 53200.0, 5320.0);
  EXPECT_GE(dev.totalDsp(), 220.0);
  EXPECT_GE(dev.totalBram(), 280.0);
}

TEST(Device, IoRingOnBorder) {
  const Device dev = Device::xc7z020like();
  EXPECT_EQ(dev.tileType(0, 0), TileType::Io);
  EXPECT_EQ(dev.tileType(dev.width() - 1, 5), TileType::Io);
  EXPECT_EQ(dev.tileType(5, dev.height() - 1), TileType::Io);
}

TEST(Device, ColumnsPlacedAsConfigured) {
  const Device dev = Device::xc7z020like();
  EXPECT_EQ(dev.tileType(18, 10), TileType::Dsp);
  EXPECT_EQ(dev.tileType(9, 10), TileType::Bram);
  EXPECT_EQ(dev.tileType(12, 10), TileType::Clb);
}

TEST(Device, TilesOfTypePartitionTheGrid) {
  const Device dev = Device::xc7z020like();
  std::size_t total = 0;
  for (int t = 0; t < 4; ++t)
    total += dev.tilesOfType(static_cast<TileType>(t)).size();
  EXPECT_EQ(total, dev.numTiles());
}

TEST(Device, CapacityMatchesType) {
  const Device dev = Device::xc7z020like();
  const auto clb = dev.tileCapacity(12, 10);
  EXPECT_GT(clb.lut, 0.0);
  EXPECT_EQ(clb.dsp, 0.0);
  const auto dsp = dev.tileCapacity(18, 10);
  EXPECT_GT(dsp.dsp, 0.0);
  EXPECT_EQ(dsp.lut, 0.0);
}

TEST(Device, ChannelBoostNearColumns) {
  const Device dev = Device::xc7z020like();
  // Next to the DSP column at x=18.
  EXPECT_GT(dev.vTracksAt(17, 10), dev.vTracks());
  EXPECT_GT(dev.hTracksAt(19, 10), dev.hTracks());
  // Far from any column.
  EXPECT_DOUBLE_EQ(dev.vTracksAt(13, 10), dev.vTracks());
}

TEST(Device, HorizontalCapacityBelowVertical) {
  // The paper's benchmarks saturate horizontal routing first (Table III);
  // the device model encodes that asymmetry.
  const Device dev = Device::xc7z020like();
  EXPECT_LT(dev.hTracks(), dev.vTracks());
}

TEST(Device, CentreRadius) {
  const Device dev = Device::xc7z020like();
  const double centre =
      dev.centreRadius(dev.width() / 2, dev.height() / 2);
  const double corner = dev.centreRadius(0, 0);
  EXPECT_LT(centre, 0.1);
  EXPECT_GT(corner, 0.9);
  EXPECT_LE(corner, 1.0);
}

TEST(Device, ManhattanDistance) {
  EXPECT_EQ(Device::manhattan(3, 4, 7, 1), 7u);
  EXPECT_EQ(Device::manhattan(5, 5, 5, 5), 0u);
}

TEST(Device, OutOfRangeIndexThrows) {
  const Device dev = Device::xc7z020like();
  EXPECT_THROW(dev.index(dev.width(), 0), hcp::Error);
}

TEST(Device, TinyDeviceRejected) {
  Device::Config c;
  c.width = 4;
  c.height = 4;
  EXPECT_THROW(Device dev(std::move(c)), hcp::Error);
}

}  // namespace
}  // namespace hcp::fpga
