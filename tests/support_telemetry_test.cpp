// Telemetry contract: span nesting, deterministic counter/span merges at
// any thread count, zero side effects when disabled, and a valid JSON
// report shape.
#include <gtest/gtest.h>

#include <sstream>

#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::support::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setEnabled(true);
    reset();
  }
  void TearDown() override {
    setEnabled(false);
    reset();
  }
};

TEST_F(TelemetryTest, SpanNestingBuildsPaths) {
  {
    HCP_SPAN("outer");
    {
      HCP_SPAN("inner");
    }
    {
      HCP_SPAN("inner");
    }
  }
  const Snapshot snap = snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);

  const auto* outer = snap.span("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->depth, 0u);

  const auto* inner = snap.span("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_LE(inner->wallNs, outer->wallNs);
}

TEST_F(TelemetryTest, CountersAccumulate) {
  count(Counter::FlowsRun);
  count(Counter::FlowsRun, 4);
  count(Counter::PlacerMovesAccepted, 0);  // no-op
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::FlowsRun), 5u);
  EXPECT_EQ(snap.counter(Counter::PlacerMovesAccepted), 0u);
}

TEST_F(TelemetryTest, SnapshotsAreMonotone) {
  count(Counter::RouterRipUps, 2);
  EXPECT_EQ(snapshot().counter(Counter::RouterRipUps), 2u);
  count(Counter::RouterRipUps, 3);
  EXPECT_EQ(snapshot().counter(Counter::RouterRipUps), 5u);
}

/// Runs a parallel region whose tasks record spans and counters; returns
/// the resulting snapshot.
Snapshot runInstrumentedRegion(std::size_t threads) {
  setEnabled(true);
  reset();
  ScopedThreadLimit limit(threads);
  HCP_SPAN("region");
  parallelFor(0, 64, 1, [](std::size_t i) {
    HCP_SPAN("task");
    count(Counter::StaArrivalPropagations, i);
    if (i % 2 == 0) {
      HCP_SPAN("even");
      count(Counter::RouterRipUps);
    }
  });
  return snapshot();
}

TEST_F(TelemetryTest, MergeIsDeterministicAcrossThreadCounts) {
  const Snapshot serial = runInstrumentedRegion(1);
  const Snapshot parallel = runInstrumentedRegion(8);

  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.counter(Counter::StaArrivalPropagations), 64u * 63u / 2);
  EXPECT_EQ(serial.counter(Counter::RouterRipUps), 32u);

  ASSERT_EQ(serial.spans.size(), parallel.spans.size());
  for (std::size_t i = 0; i < serial.spans.size(); ++i) {
    EXPECT_EQ(serial.spans[i].path, parallel.spans[i].path);
    EXPECT_EQ(serial.spans[i].count, parallel.spans[i].count);
    EXPECT_EQ(serial.spans[i].depth, parallel.spans[i].depth);
  }
  // Task spans are prefixed with the submitting thread's open span path.
  const auto* task = parallel.span("region/task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 64u);
  EXPECT_EQ(task->depth, 1u);
  const auto* even = parallel.span("region/task/even");
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(even->count, 32u);
  EXPECT_EQ(even->depth, 2u);
}

TEST_F(TelemetryTest, DisabledHasZeroSideEffects) {
  setEnabled(false);
  {
    HCP_SPAN("ghost");
    count(Counter::FlowsRun, 100);
    ScopedThreadLimit limit(4);
    parallelFor(0, 16, 1, [](std::size_t) {
      HCP_SPAN("ghost_task");
      count(Counter::RouterRipUps);
    });
  }
  setEnabled(true);  // re-enable so snapshot() itself is exercised
  const Snapshot snap = snapshot();
  EXPECT_TRUE(snap.spans.empty());
  for (std::size_t c = 0; c < kNumCounters; ++c)
    EXPECT_EQ(snap.counters[c], 0u) << counterName(static_cast<Counter>(c));
}

TEST_F(TelemetryTest, ReportWritesValidJsonShape) {
  {
    HCP_SPAN("flow");
    count(Counter::FlowsRun);
  }
  RunReport meta;
  meta.tool = "unit_test";
  meta.command = "flow";
  meta.designs = {"design_a", "design \"b\""};
  meta.seed = 7;
  meta.threads = 3;
  meta.totalWallMs = 1.5;
  std::ostringstream os;
  writeReport(os, meta, snapshot());
  const std::string json = os.str();

  EXPECT_NE(json.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"design \\\"b\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"flows_run\": 1"), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// Thousands of tiny back-to-back batches (the GBRT training pattern):
// every batch's counter total must land exactly, and no worker may touch a
// previous batch's task after it was torn down.
TEST_F(TelemetryTest, BackToBackBatchesMergeExactly) {
  ScopedThreadLimit limit(8);
  constexpr std::size_t kBatches = 4000;
  constexpr std::size_t kTasks = 16;
  for (std::size_t b = 0; b < kBatches; ++b) {
    parallelFor(0, kTasks, 1, [](std::size_t) {
      count(Counter::PlacerMovesProposed);
    });
  }
  EXPECT_EQ(snapshot().counter(Counter::PlacerMovesProposed),
            kBatches * kTasks);
}

TEST_F(TelemetryTest, CounterNamesAreStable) {
  EXPECT_EQ(counterName(Counter::PlacerMovesAccepted),
            "placer_moves_accepted");
  EXPECT_EQ(counterName(Counter::GbrtBoostingRounds), "gbrt_boosting_rounds");
}

}  // namespace
}  // namespace hcp::support::telemetry
