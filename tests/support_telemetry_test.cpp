// Telemetry contract: span nesting, deterministic counter/span/histogram
// merges at any thread count (bit-identical doubles included), zero side
// effects when disabled, and strictly valid JSON reports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::support::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setEnabled(true);
    reset();
  }
  void TearDown() override {
    setEnabled(false);
    reset();
  }
};

TEST_F(TelemetryTest, SpanNestingBuildsPaths) {
  {
    HCP_SPAN("outer");
    {
      HCP_SPAN("inner");
    }
    {
      HCP_SPAN("inner");
    }
  }
  const Snapshot snap = snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);

  const auto* outer = snap.span("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->depth, 0u);

  const auto* inner = snap.span("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_LE(inner->wallNs, outer->wallNs);
}

TEST_F(TelemetryTest, CountersAccumulate) {
  count(Counter::FlowsRun);
  count(Counter::FlowsRun, 4);
  count(Counter::PlacerMovesAccepted, 0);  // no-op
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.counter(Counter::FlowsRun), 5u);
  EXPECT_EQ(snap.counter(Counter::PlacerMovesAccepted), 0u);
}

TEST_F(TelemetryTest, SnapshotsAreMonotone) {
  count(Counter::RouterRipUps, 2);
  EXPECT_EQ(snapshot().counter(Counter::RouterRipUps), 2u);
  count(Counter::RouterRipUps, 3);
  EXPECT_EQ(snapshot().counter(Counter::RouterRipUps), 5u);
}

/// Runs a parallel region whose tasks record spans and counters; returns
/// the resulting snapshot.
Snapshot runInstrumentedRegion(std::size_t threads) {
  setEnabled(true);
  reset();
  ScopedThreadLimit limit(threads);
  HCP_SPAN("region");
  parallelFor(0, 64, 1, [](std::size_t i) {
    HCP_SPAN("task");
    count(Counter::StaArrivalPropagations, i);
    if (i % 2 == 0) {
      HCP_SPAN("even");
      count(Counter::RouterRipUps);
    }
  });
  return snapshot();
}

TEST_F(TelemetryTest, MergeIsDeterministicAcrossThreadCounts) {
  const Snapshot serial = runInstrumentedRegion(1);
  const Snapshot parallel = runInstrumentedRegion(8);

  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.counter(Counter::StaArrivalPropagations), 64u * 63u / 2);
  EXPECT_EQ(serial.counter(Counter::RouterRipUps), 32u);

  ASSERT_EQ(serial.spans.size(), parallel.spans.size());
  for (std::size_t i = 0; i < serial.spans.size(); ++i) {
    EXPECT_EQ(serial.spans[i].path, parallel.spans[i].path);
    EXPECT_EQ(serial.spans[i].count, parallel.spans[i].count);
    EXPECT_EQ(serial.spans[i].depth, parallel.spans[i].depth);
  }
  // Task spans are prefixed with the submitting thread's open span path.
  const auto* task = parallel.span("region/task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 64u);
  EXPECT_EQ(task->depth, 1u);
  const auto* even = parallel.span("region/task/even");
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(even->count, 32u);
  EXPECT_EQ(even->depth, 2u);
}

TEST_F(TelemetryTest, DisabledHasZeroSideEffects) {
  setEnabled(false);
  {
    HCP_SPAN("ghost");
    count(Counter::FlowsRun, 100);
    ScopedThreadLimit limit(4);
    parallelFor(0, 16, 1, [](std::size_t) {
      HCP_SPAN("ghost_task");
      count(Counter::RouterRipUps);
    });
  }
  setEnabled(true);  // re-enable so snapshot() itself is exercised
  const Snapshot snap = snapshot();
  EXPECT_TRUE(snap.spans.empty());
  for (std::size_t c = 0; c < kNumCounters; ++c)
    EXPECT_EQ(snap.counters[c], 0u) << counterName(static_cast<Counter>(c));
}

TEST(HistStat, TracksCountSumMinMax) {
  HistStat h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty: defined as 0
  h.add(3.0);
  h.add(-1.5);
  h.add(0.0);
  h.add(std::nan(""));  // dropped
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1.5);
  EXPECT_DOUBLE_EQ(h.min, -1.5);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
}

TEST(HistStat, BucketIndexLayout) {
  const std::size_t zero = HistStat::bucketIndex(0.0);
  EXPECT_EQ(zero, HistStat::kBuckets / 2);
  // Positive magnitudes grow rightward, negative leftward, symmetrically.
  EXPECT_EQ(HistStat::bucketIndex(1.0), zero + 1 + 16);   // 2^0
  EXPECT_EQ(HistStat::bucketIndex(-1.0), zero - 1 - 16);
  EXPECT_EQ(HistStat::bucketIndex(2.0), HistStat::bucketIndex(3.9));
  EXPECT_LT(HistStat::bucketIndex(2.0), HistStat::bucketIndex(4.0));
  // Out-of-range magnitudes clamp into the edge buckets.
  EXPECT_EQ(HistStat::bucketIndex(1e300), HistStat::kBuckets - 1);
  EXPECT_EQ(HistStat::bucketIndex(-1e300), 0u);
  EXPECT_EQ(HistStat::bucketIndex(1e-300), zero + 1);
}

TEST(HistStat, PercentileIsBucketEdgeClampedToRange) {
  HistStat h;
  for (int i = 0; i < 100; ++i) h.add(1.5);  // all in bucket [1, 2)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);  // edge 2.0 clamps to max
  h.add(100.0);  // one outlier in [64, 128)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);    // interior: bucket upper edge
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);  // exact max
}

TEST(HistStat, MergeMatchesSequentialAdds) {
  HistStat a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i * 1.25);
    all.add(i * 1.25);
  }
  for (int i = 10; i < 20; ++i) {
    b.add(i * -0.75);
    all.add(i * -0.75);
  }
  a.merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.sum, all.sum);
  EXPECT_DOUBLE_EQ(a.min, all.min);
  EXPECT_DOUBLE_EQ(a.max, all.max);
  EXPECT_EQ(a.buckets, all.buckets);
  HistStat empty;
  a.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.min, all.min);
}

TEST_F(TelemetryTest, ObserveFeedsSnapshotHistograms) {
  observe(Histogram::NetFanout, 4.0);
  observe(Histogram::NetFanout, 2.0);
  observe(Histogram::StaSlackNs, -3.25);
  const Snapshot snap = snapshot();
  const HistStat& fanout = snap.histogram(Histogram::NetFanout);
  EXPECT_EQ(fanout.count, 2u);
  EXPECT_DOUBLE_EQ(fanout.sum, 6.0);
  const HistStat& slack = snap.histogram(Histogram::StaSlackNs);
  EXPECT_EQ(slack.count, 1u);
  EXPECT_DOUBLE_EQ(slack.min, -3.25);
}

/// Observes one value per task from a parallel region and returns the
/// merged histogram.
HistStat observeInRegion(std::size_t threads) {
  setEnabled(true);
  reset();
  ScopedThreadLimit limit(threads);
  parallelFor(0, 128, 1, [](std::size_t i) {
    // Values whose sum is order-sensitive in floating point: any deviation
    // from the fixed merge order changes the bits of `sum`.
    observe(Histogram::DatasetLabelPct, 1.0 + 1e-13 * double(i * i % 97));
  });
  return snapshot().histogram(Histogram::DatasetLabelPct);
}

TEST_F(TelemetryTest, HistogramMergeIsBitIdenticalAcrossThreadCounts) {
  const HistStat serial = observeInRegion(1);
  const HistStat parallel = observeInRegion(8);
  EXPECT_EQ(serial.count, parallel.count);
  // memcmp, not ==: the contract is bit-identical doubles, which is what
  // makes run reports diffable across thread counts.
  EXPECT_EQ(std::memcmp(&serial.sum, &parallel.sum, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&serial.min, &parallel.min, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&serial.max, &parallel.max, sizeof(double)), 0);
  EXPECT_EQ(serial.buckets, parallel.buckets);
}

TEST_F(TelemetryTest, HistogramNamesAreStable) {
  EXPECT_EQ(histogramName(Histogram::PlacerAcceptedMoveDelta),
            "placer_accepted_move_delta");
  EXPECT_EQ(histogramName(Histogram::CvFoldMedae), "cv_fold_medae");
}

TEST_F(TelemetryTest, ReportWritesStrictlyValidJson) {
  {
    HCP_SPAN("flow");
    count(Counter::FlowsRun);
    observe(Histogram::NetFanout, 2.0);
  }
  RunReport meta;
  meta.tool = "unit_test";
  meta.command = "flow";
  // Design names a sloppy escaper would corrupt: quotes, backslashes,
  // newline, tab, and a raw control byte.
  meta.designs = {"design_a", "design \"b\"", "back\\slash",
                  std::string("ctl\x01\n\tend")};
  meta.seed = 7;
  meta.threads = 3;
  meta.totalWallMs = 1.5;
  std::ostringstream os;
  writeReport(os, meta, snapshot());

  // The report must parse under the strict RFC 8259 parser — not merely
  // be brace-balanced — and every field must round-trip exactly.
  const json::Value doc = json::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.find("schema_version")->asNumber(),
                   kReportSchemaVersion);
  EXPECT_EQ(doc.object[0].first, "schema_version");  // first key: versioning
  EXPECT_EQ(doc.find("tool")->asString(), "unit_test");
  EXPECT_DOUBLE_EQ(doc.find("seed")->asNumber(), 7.0);
  EXPECT_DOUBLE_EQ(doc.find("threads")->asNumber(), 3.0);
  const json::Value* designs = doc.find("designs");
  ASSERT_NE(designs, nullptr);
  ASSERT_EQ(designs->array.size(), meta.designs.size());
  for (std::size_t i = 0; i < meta.designs.size(); ++i)
    EXPECT_EQ(designs->array[i].asString(), meta.designs[i]);

  EXPECT_DOUBLE_EQ(doc.find("counters")->find("flows_run")->asNumber(), 1.0);
  const json::Value* fanout = doc.find("histograms")->find("net_fanout");
  ASSERT_NE(fanout, nullptr);
  EXPECT_DOUBLE_EQ(fanout->find("count")->asNumber(), 1.0);
  EXPECT_DOUBLE_EQ(fanout->find("sum")->asNumber(), 2.0);
  for (const char* field : {"min", "max", "p50", "p90", "p99"})
    EXPECT_TRUE(fanout->find(field)->isNumber()) << field;

  const json::Value* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  EXPECT_EQ(spans->array[0].find("path")->asString(), "flow");
}

TEST_F(TelemetryTest, ReportDoublesRoundTripBitExactly) {
  // 0.1 + 0.2 is not 0.3 in binary; %.17g in the writer must preserve the
  // exact sum so compare-reports sees identical text for identical runs.
  observe(Histogram::StaSlackNs, 0.1);
  observe(Histogram::StaSlackNs, 0.2);
  RunReport meta;
  meta.tool = "t";
  std::ostringstream os;
  writeReport(os, meta, snapshot());
  const json::Value doc = json::parse(os.str());
  const double sum =
      doc.find("histograms")->find("sta_slack_ns")->find("sum")->asNumber();
  const double expected = 0.1 + 0.2;
  EXPECT_EQ(std::memcmp(&sum, &expected, sizeof(double)), 0);
}

TEST(TelemetryFlags, ReportFlagParsesBothSpellings) {
  const char* argv1[] = {"tool", "--report", "a.json"};
  EXPECT_EQ(detail::flagValueOrDie(3, const_cast<char**>(argv1), "report"),
            "a.json");
  const char* argv2[] = {"tool", "--report=b.json"};
  EXPECT_EQ(detail::flagValueOrDie(2, const_cast<char**>(argv2), "report"),
            "b.json");
  const char* argv3[] = {"tool", "--report=a.json", "--report", "c.json"};
  EXPECT_EQ(detail::flagValueOrDie(4, const_cast<char**>(argv3), "report"),
            "c.json");  // last occurrence wins
  const char* argv4[] = {"tool", "run"};
  EXPECT_EQ(detail::flagValueOrDie(2, const_cast<char**>(argv4), "report"),
            "");
}

TEST(TelemetryFlagsDeathTest, TrailingFlagWithoutValueExitsWithUsageError) {
  const char* trailing[] = {"tool", "--report"};
  EXPECT_EXIT((void)detail::flagValueOrDie(2, const_cast<char**>(trailing),
                                           "report"),
              ::testing::ExitedWithCode(2), "--report expects a value");
  const char* empty[] = {"tool", "--trace="};
  EXPECT_EXIT(
      (void)detail::flagValueOrDie(2, const_cast<char**>(empty), "trace"),
      ::testing::ExitedWithCode(2), "--trace expects a non-empty value");
}

// Thousands of tiny back-to-back batches (the GBRT training pattern):
// every batch's counter total must land exactly, and no worker may touch a
// previous batch's task after it was torn down.
TEST_F(TelemetryTest, BackToBackBatchesMergeExactly) {
  ScopedThreadLimit limit(8);
  constexpr std::size_t kBatches = 4000;
  constexpr std::size_t kTasks = 16;
  for (std::size_t b = 0; b < kBatches; ++b) {
    parallelFor(0, kTasks, 1, [](std::size_t) {
      count(Counter::PlacerMovesProposed);
    });
  }
  EXPECT_EQ(snapshot().counter(Counter::PlacerMovesProposed),
            kBatches * kTasks);
}

TEST_F(TelemetryTest, CounterNamesAreStable) {
  EXPECT_EQ(counterName(Counter::PlacerMovesAccepted),
            "placer_moves_accepted");
  EXPECT_EQ(counterName(Counter::GbrtBoostingRounds), "gbrt_boosting_rounds");
}

}  // namespace
}  // namespace hcp::support::telemetry
