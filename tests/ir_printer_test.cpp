#include <gtest/gtest.h>

#include "apps/face_detection.hpp"
#include "hls/transforms.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"

namespace hcp::ir {
namespace {

Function makeFn() {
  Function fn("demo");
  Builder b(fn);
  const auto in = b.inPort("x", 16);
  const auto out = b.outPort("y", 16);
  const auto arr = b.array("buf", 8, 16);
  b.atLine(5);
  const OpId x = b.readPort(in);
  b.beginLoop("L", 4);
  const OpId idx = b.constant(2, 4);
  b.store(arr, idx, x);
  const OpId v = b.load(arr, idx);
  b.endLoop();
  b.writePort(out, v);
  b.ret();
  return fn;
}

TEST(Printer, ContainsStructure) {
  const std::string text = print(makeFn());
  EXPECT_NE(text.find("func demo {"), std::string::npos);
  EXPECT_NE(text.find("port in x :16"), std::string::npos);
  EXPECT_NE(text.find("port out y :16"), std::string::npos);
  EXPECT_NE(text.find("array buf[8] :16 banks=1"), std::string::npos);
  EXPECT_NE(text.find("loop 1 \"L\" parent=0 trip=4"), std::string::npos);
  EXPECT_NE(text.find("= readport x"), std::string::npos);
  EXPECT_NE(text.find("= store buf"), std::string::npos);
}

TEST(Printer, ShowsLoopAndLineAnnotations) {
  const std::string text = print(makeFn());
  EXPECT_NE(text.find("loop=1"), std::string::npos);
  EXPECT_NE(text.find("line=5"), std::string::npos);
}

TEST(Printer, OptionsSuppressAnnotations) {
  PrintOptions options;
  options.sourceLines = false;
  options.loopBodies = false;
  const std::string text = print(makeFn(), options);
  EXPECT_EQ(text.find("line="), std::string::npos);
  EXPECT_EQ(text.find("loop="), std::string::npos);
}

TEST(Printer, PartialBitUseMarked) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("x", 32);
  const OpId x = b.readPort(in);
  b.trunc(x, 8);
  b.ret();
  const std::string text = print(fn);
  EXPECT_NE(text.find("[8b]"), std::string::npos);
}

TEST(Printer, UnrollOriginsOptIn) {
  auto fn = makeFn();
  hls::unrollLoop(fn, 1, 2);
  PrintOptions options;
  options.unrollOrigins = true;
  const std::string text = print(fn, options);
  EXPECT_NE(text.find("origin=%"), std::string::npos);
  EXPECT_NE(text.find("replica="), std::string::npos);
}

TEST(Printer, ModulePrintsAllFunctions) {
  auto app = apps::faceDetection({.stages = 2});
  const std::string text = print(*app.module);
  EXPECT_NE(text.find("module face_detection top=face_detect"),
            std::string::npos);
  EXPECT_NE(text.find("func stage_0"), std::string::npos);
  EXPECT_NE(text.find("func face_detect"), std::string::npos);
  EXPECT_NE(text.find("call @cascade_classifier"), std::string::npos);
}

TEST(Printer, StableAcrossCalls) {
  const auto fn = makeFn();
  EXPECT_EQ(print(fn), print(fn));
}

}  // namespace
}  // namespace hcp::ir
