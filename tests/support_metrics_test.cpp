// Metrics exposition contract: the JSON body is strictly parseable and
// carries every counter/histogram with deterministic percentiles; the
// Prometheus rendering obeys the text exposition format rules (metric name
// charset, _total counter suffix, HELP/label-value escaping, summary
// quantile lines); promPathFor derives the snapshot sibling path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/metrics_export.hpp"
#include "support/telemetry.hpp"

namespace hcp::support::metrics {
namespace {

namespace tel = support::telemetry;

class MetricsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tel::setEnabled(true);
    tel::reset();
  }
  void TearDown() override {
    tel::setEnabled(false);
    tel::reset();
  }
};

TEST_F(MetricsExportTest, EveryMetricNameIsPrometheusValid) {
  for (std::size_t i = 0; i < tel::kNumCounters; ++i)
    EXPECT_TRUE(validMetricName(
        tel::counterName(static_cast<tel::Counter>(i))))
        << tel::counterName(static_cast<tel::Counter>(i));
  for (std::size_t i = 0; i < tel::kNumHistograms; ++i)
    EXPECT_TRUE(validMetricName(
        tel::histogramName(static_cast<tel::Histogram>(i))))
        << tel::histogramName(static_cast<tel::Histogram>(i));
}

TEST_F(MetricsExportTest, ValidMetricNameRules) {
  EXPECT_TRUE(validMetricName("hcp_served_total"));
  EXPECT_TRUE(validMetricName("a:b_c9"));
  EXPECT_TRUE(validMetricName("_leading_underscore"));
  EXPECT_FALSE(validMetricName(""));
  EXPECT_FALSE(validMetricName("9starts_with_digit"));
  EXPECT_FALSE(validMetricName("has-dash"));
  EXPECT_FALSE(validMetricName("has space"));
  EXPECT_FALSE(validMetricName("unicodé"));
}

TEST_F(MetricsExportTest, EscapingRules) {
  EXPECT_EQ(escapeHelp("back\\slash\nnewline"), "back\\\\slash\\nnewline");
  EXPECT_EQ(escapeHelp("plain"), "plain");
  // Label values additionally escape double quotes.
  EXPECT_EQ(escapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST_F(MetricsExportTest, PromPathDerivation) {
  EXPECT_EQ(promPathFor("metrics.json"), "metrics.prom");
  EXPECT_EQ(promPathFor("/a/b/snap.json"), "/a/b/snap.prom");
  EXPECT_EQ(promPathFor("noext"), "noext.prom");
  EXPECT_EQ(promPathFor(".json"), ".json.prom");  // bare extension: append
}

TEST_F(MetricsExportTest, JsonBodyParsesAndCarriesEverything) {
  tel::count(tel::Counter::ServeRequests);
  tel::observe(tel::Histogram::ServeRequestLatencyMs, 1.5);
  tel::observe(tel::Histogram::ServeRequestLatencyMs, 3.0);

  Gauges g;
  g.tool = "hcp_serve";
  g.uptimeMs = 12.5;
  g.requestsInFlight = 2;
  g.served = 7;
  g.queuePeak = 3;
  g.qps = 560.0;
  g.cacheHitRate = 0.25;
  g.model = true;

  const json::Value v = json::parse("{" + jsonBody(g, tel::snapshot()) + "}");
  EXPECT_EQ(v.find("tool")->asString(), "hcp_serve");
  EXPECT_DOUBLE_EQ(v.find("uptime_ms")->asNumber(), 12.5);
  EXPECT_DOUBLE_EQ(v.find("requests_in_flight")->asNumber(), 2.0);
  EXPECT_DOUBLE_EQ(v.find("qps")->asNumber(), 560.0);
  EXPECT_TRUE(v.find("model")->asBool());

  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->object.size(), tel::kNumCounters);
  EXPECT_DOUBLE_EQ(counters->find("serve_requests")->asNumber(), 1.0);

  const json::Value* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_EQ(hists->object.size(), tel::kNumHistograms);
  const json::Value* lat = hists->find("serve_request_latency_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->asNumber(), 2.0);
  EXPECT_DOUBLE_EQ(lat->find("sum")->asNumber(), 4.5);
  EXPECT_DOUBLE_EQ(lat->find("min")->asNumber(), 1.5);
  EXPECT_DOUBLE_EQ(lat->find("max")->asNumber(), 3.0);
  // Percentiles come from the deterministic bucket edges, clamped to the
  // observed range — p99 of two samples is the max.
  EXPECT_DOUBLE_EQ(lat->find("p99")->asNumber(), 3.0);
  // An empty histogram renders zeros, not garbage min/max sentinels.
  const json::Value* empty = hists->find("serve_batch_size");
  ASSERT_NE(empty, nullptr);
  EXPECT_DOUBLE_EQ(empty->find("count")->asNumber(), 0.0);
  EXPECT_DOUBLE_EQ(empty->find("min")->asNumber(), 0.0);
  EXPECT_DOUBLE_EQ(empty->find("max")->asNumber(), 0.0);
}

TEST_F(MetricsExportTest, PrometheusRenderingFollowsTheFormat) {
  tel::count(tel::Counter::ServeRequests);
  tel::observe(tel::Histogram::ServeRequestLatencyMs, 2.0);

  Gauges g;
  g.tool = "tool\"with\\evil";
  g.uptimeMs = 5.0;
  std::ostringstream os;
  writePrometheus(os, g, tel::snapshot());
  const std::string text = os.str();

  // Label value escaped per the exposition format.
  EXPECT_NE(text.find("hcp_uptime_ms{tool=\"tool\\\"with\\\\evil\"} 5"),
            std::string::npos);
  // Counters carry the _total suffix and a TYPE line.
  EXPECT_NE(text.find("# TYPE hcp_serve_requests_total counter\n"
                      "hcp_serve_requests_total 1\n"),
            std::string::npos);
  // Histograms render as summaries with quantile sample lines + _sum/_count.
  EXPECT_NE(text.find("# TYPE hcp_serve_request_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("hcp_serve_request_latency_ms{quantile=\"0.99\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcp_serve_request_latency_ms_sum 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcp_serve_request_latency_ms_count 1\n"),
            std::string::npos);

  // Every sample line's metric name (with its optional {labels} stripped)
  // is format-valid.
  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_TRUE(validMetricName(name)) << line;
    ++samples;
  }
  // Gauges + one line per counter + (3 quantiles + sum/count/min/max) per
  // histogram.
  EXPECT_EQ(samples, 8 + tel::kNumCounters + 7 * tel::kNumHistograms);
}

TEST_F(MetricsExportTest, RenderingIsDeterministic) {
  tel::observe(tel::Histogram::ServeRequestLatencyMs, 0.25);
  Gauges g;
  g.tool = "hcp_serve";
  g.uptimeMs = 1.0;
  const auto snap = tel::snapshot();
  EXPECT_EQ(jsonBody(g, snap), jsonBody(g, snap));
  std::ostringstream a, b;
  writePrometheus(a, g, snap);
  writePrometheus(b, g, snap);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace hcp::support::metrics
