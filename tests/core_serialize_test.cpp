// Predictor persistence and dataset enrichment (paper §III: enrich the
// training data with one flow of the target design when few applications
// are available).
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"
#include "ml/metrics.hpp"

namespace hcp::core {
namespace {

class CoreSerializeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    device_ = new fpga::Device(fpga::Device::xc7z020like());
    apps::FaceDetectionConfig cfg;
    cfg.stages = 4;
    cfg.windowTrip = 64;
    cfg.fillTrip = 64;
    faceFlow_ = new FlowResult(
        runFlow(apps::faceDetection(cfg), *device_, {}));
    apps::DigitRecognitionConfig digitCfg;
    digitCfg.trainingSize = 128;
    digitCfg.unroll = 8;
    digitFlow_ = new FlowResult(
        runFlow(apps::digitRecognition(digitCfg), *device_, {}));
  }
  static void TearDownTestSuite() {
    delete faceFlow_;
    delete digitFlow_;
    delete device_;
  }

  static fpga::Device* device_;
  static FlowResult* faceFlow_;
  static FlowResult* digitFlow_;
};

fpga::Device* CoreSerializeTest::device_ = nullptr;
FlowResult* CoreSerializeTest::faceFlow_ = nullptr;
FlowResult* CoreSerializeTest::digitFlow_ = nullptr;

TEST_F(CoreSerializeTest, PredictorSaveLoadBitIdentical) {
  const auto data = buildDataset(*faceFlow_, {});
  PredictorOptions opts;
  opts.gbrt.numEstimators = 30;
  CongestionPredictor predictor(opts);
  predictor.train(data);

  const std::string path = "predictor_test.hcp";
  predictor.save(path);
  const auto restored = CongestionPredictor::load(path);
  std::remove(path.c_str());
  EXPECT_TRUE(restored.trained());

  features::FeatureExtractor extractor(faceFlow_->design, {});
  for (std::size_t i = 0; i < std::min<std::size_t>(20, data.samples.size());
       ++i) {
    const auto& s = data.samples[i];
    const auto a = predictor.predictOp(extractor, s.functionIndex, s.op);
    const auto b = restored.predictOp(extractor, s.functionIndex, s.op);
    EXPECT_DOUBLE_EQ(a.vertical, b.vertical);
    EXPECT_DOUBLE_EQ(a.horizontal, b.horizontal);
    EXPECT_DOUBLE_EQ(a.average, b.average);
  }
}

TEST_F(CoreSerializeTest, SaveUntrainedThrows) {
  CongestionPredictor predictor{PredictorOptions{}};
  EXPECT_THROW(predictor.save("nope.hcp"), hcp::Error);
}

TEST_F(CoreSerializeTest, EnrichmentAppendsRows) {
  auto base = buildDataset(*faceFlow_, {});
  const auto extra = buildDataset(*digitFlow_, {});
  const std::size_t before = base.vertical.size();
  enrichDataset(base, extra);
  EXPECT_EQ(base.vertical.size(), before + extra.vertical.size());
  EXPECT_EQ(base.samples.size(), base.vertical.size());
}

TEST_F(CoreSerializeTest, EnrichmentImprovesTargetAccuracy) {
  // Paper §III: with few training apps, one flow of the target design
  // enriches the dataset and improves its estimation accuracy.
  auto trainData = buildDataset(*faceFlow_, {});
  const auto targetData = buildDataset(*digitFlow_, {});

  PredictorOptions opts;
  opts.gbrt.numEstimators = 60;
  auto evalOnTarget = [&](const LabeledDataset& train) {
    CongestionPredictor predictor(opts);
    predictor.train(train);
    features::FeatureExtractor extractor(digitFlow_->design, {});
    std::vector<double> actual, predicted;
    for (const auto& s : targetData.samples) {
      actual.push_back(s.avgCongestion);
      predicted.push_back(
          predictor.predictOp(extractor, s.functionIndex, s.op).average);
    }
    return ml::meanAbsoluteError(actual, predicted);
  };

  const double before = evalOnTarget(trainData);
  enrichDataset(trainData, targetData);
  const double after = evalOnTarget(trainData);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace hcp::core
