// Persistence failure paths: every trained model kind must round-trip
// through CongestionPredictor::save/load bit-identically, and malformed
// files (truncated, wrong magic, bad version, unknown kind) must be
// rejected with hcp::Error by both ml::loadModelFromFile and
// CongestionPredictor::load — never crash or silently misload.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "ml/serialize.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace hcp::core {
namespace {

using hcp::test::TempFile;

/// A small deterministic regression problem (same rows for V/H/avg).
LabeledDataset makeDataset() {
  LabeledDataset data;
  for (std::size_t i = 0; i < 48; ++i) {
    const double a = static_cast<double>(i % 7);
    const double b = static_cast<double>((i * 5) % 11);
    const double c = static_cast<double>(i) / 48.0;
    const std::vector<double> row = {a, b, c};
    data.vertical.add(row, 0.4 * a + 0.1 * b);
    data.horizontal.add(row, 0.2 * b + c);
    data.average.add(row, 0.3 * a + 0.1 * b + 0.5 * c);
  }
  return data;
}

PredictorOptions smallOptions(ModelKind kind) {
  PredictorOptions options;
  options.kind = kind;
  options.gbrt.numEstimators = 12;
  options.gbrt.maxDepth = 3;
  options.gbrt.minSamplesLeaf = 2;
  options.mlp.hiddenLayers = {8};
  options.mlp.maxEpochs = 12;
  options.mlp.batchSize = 16;
  options.lasso.maxIterations = 100;
  return options;
}

class PredictorPersistenceTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(PredictorPersistenceTest, RoundTripPredictsIdentically) {
  const LabeledDataset data = makeDataset();
  CongestionPredictor predictor(smallOptions(GetParam()));
  predictor.train(data);

  TempFile file(std::string("predictor_roundtrip_") +
                std::string(modelKindName(GetParam())) + ".hcp");
  predictor.save(file.path());
  const CongestionPredictor restored = CongestionPredictor::load(file.path());
  EXPECT_TRUE(restored.trained());

  for (std::size_t i = 0; i < data.vertical.size(); ++i) {
    const auto row = data.vertical.row(i);
    EXPECT_EQ(predictor.verticalModel().predict(row),
              restored.verticalModel().predict(row));
    EXPECT_EQ(predictor.horizontalModel().predict(row),
              restored.horizontalModel().predict(row));
    EXPECT_EQ(predictor.averageModel().predict(row),
              restored.averageModel().predict(row));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PredictorPersistenceTest,
                         ::testing::Values(ModelKind::Linear, ModelKind::Ann,
                                           ModelKind::Gbrt),
                         [](const auto& info) {
                           return std::string(modelKindName(info.param));
                         });

TEST(PredictorPersistenceFailures, SaveUntrainedThrows) {
  CongestionPredictor predictor;
  TempFile file("predictor_untrained.hcp");
  EXPECT_THROW(predictor.save(file.path()), hcp::Error);
}

TEST(PredictorPersistenceFailures, MissingFileThrows) {
  EXPECT_THROW(CongestionPredictor::load("/nonexistent/predictor.hcp"),
               hcp::Error);
  EXPECT_THROW(ml::loadModelFromFile("/nonexistent/model.hcp"), hcp::Error);
}

TEST(PredictorPersistenceFailures, TruncatedFileThrows) {
  const LabeledDataset data = makeDataset();
  CongestionPredictor predictor(smallOptions(ModelKind::Gbrt));
  predictor.train(data);
  TempFile file("predictor_truncated.hcp");
  predictor.save(file.path());

  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 2u);
  TempFile cut("predictor_truncated_half.hcp");
  {
    std::ofstream os(cut.path(), std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(CongestionPredictor::load(cut.path()), hcp::Error);
  EXPECT_THROW(ml::loadModelFromFile(cut.path()), hcp::Error);
}

TEST(PredictorPersistenceFailures, WrongMagicThrows) {
  TempFile file("predictor_wrong_magic.hcp");
  {
    std::ofstream os(file.path());
    os << "not-a-predictor 1 GBRT\n";
  }
  EXPECT_THROW(CongestionPredictor::load(file.path()), hcp::Error);
  EXPECT_THROW(ml::loadModelFromFile(file.path()), hcp::Error);
}

TEST(PredictorPersistenceFailures, UnsupportedVersionThrows) {
  TempFile file("predictor_bad_version.hcp");
  {
    std::ofstream os(file.path());
    os << "hcp-predictor 99 GBRT\n";
  }
  EXPECT_THROW(CongestionPredictor::load(file.path()), hcp::Error);
}

TEST(PredictorPersistenceFailures, UnknownKindThrows) {
  TempFile file("predictor_unknown_kind.hcp");
  {
    std::ofstream os(file.path());
    os << "hcp-predictor 1 SVM\n";
  }
  EXPECT_THROW(CongestionPredictor::load(file.path()), hcp::Error);
}

TEST(PredictorPersistenceFailures, TruncationErrorNamesThePath) {
  const LabeledDataset data = makeDataset();
  CongestionPredictor predictor(smallOptions(ModelKind::Linear));
  predictor.train(data);
  TempFile file("predictor_named_path.hcp");
  predictor.save(file.path());

  std::string bytes;
  {
    std::ifstream is(file.path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  TempFile cut("predictor_named_path_cut.hcp");
  {
    std::ofstream os(cut.path(), std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 40));
  }
  try {
    CongestionPredictor::load(cut.path());
    FAIL() << "truncated predictor file must not load";
  } catch (const hcp::Error& e) {
    EXPECT_NE(std::string(e.what()).find(cut.path()), std::string::npos)
        << "error message must name the file: " << e.what();
  }
}

TEST(PredictorPersistenceFailures, TrailingGarbageThrowsWithPath) {
  const LabeledDataset data = makeDataset();
  CongestionPredictor predictor(smallOptions(ModelKind::Linear));
  predictor.train(data);
  TempFile file("predictor_trailing.hcp");
  predictor.save(file.path());
  {
    std::ofstream os(file.path(), std::ios::binary | std::ios::app);
    os << "\nleftover bytes";
  }
  try {
    CongestionPredictor::load(file.path());
    FAIL() << "predictor file with trailing bytes must not load";
  } catch (const hcp::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trailing"), std::string::npos) << what;
    EXPECT_NE(what.find(file.path()), std::string::npos) << what;
  }
}

TEST(PredictorPersistenceFailures, UnknownModelTagThrows) {
  TempFile file("model_unknown_tag.hcp");
  {
    std::ofstream os(file.path());
    os << "hcp-model svm 1\n";
  }
  EXPECT_THROW(ml::loadModelFromFile(file.path()), hcp::Error);
}

}  // namespace
}  // namespace hcp::core
