#include <gtest/gtest.h>

#include "fpga/par.hpp"
#include "fpga/sta.hpp"

namespace hcp::fpga {
namespace {

using rtl::Cell;
using rtl::CellId;
using rtl::CellType;
using rtl::Netlist;

/// Fixture: a netlist with explicit cells and one-net-per-edge, implemented
/// on the device so STA has locations and routes.
struct StaFixture {
  Netlist nl{"t"};
  rtl::InstanceId inst;

  StaFixture() { inst = nl.addInstance({"top", 0, 0}); }

  CellId reg(const std::string& name) {
    Cell c;
    c.name = name;
    c.type = CellType::Register;
    c.width = 8;
    c.res.ff = 8;
    c.delayNs = 0.4;
    c.sequential = true;
    c.instance = inst;
    return nl.addCell(std::move(c));
  }

  CellId comb(const std::string& name, double delay, double lut = 4.0) {
    Cell c;
    c.name = name;
    c.type = CellType::Fu;
    c.width = 8;
    c.res.lut = lut;
    c.delayNs = delay;
    c.instance = inst;
    return nl.addCell(std::move(c));
  }

  void net(CellId from, CellId to) {
    rtl::Net n;
    n.name = "n" + std::to_string(nl.numNets());
    n.width = 8;
    n.driver = from;
    n.sinks = {to};
    nl.addNet(std::move(n));
  }

  TimingReport run(const TimingConfig& cfg = {}) {
    const Device dev = Device::xc7z020like();
    ParConfig pc;
    pc.timing = cfg;
    const auto impl = implement(nl, dev, pc);
    return impl.timing;
  }
};

TEST(Sta, LongerChainsLongerCriticalPath) {
  StaFixture a;
  {
    const auto r1 = a.reg("r1");
    const auto c1 = a.comb("c1", 2.0);
    const auto r2 = a.reg("r2");
    a.net(r1, c1);
    a.net(c1, r2);
  }
  StaFixture b;
  {
    const auto r1 = b.reg("r1");
    const auto c1 = b.comb("c1", 2.0);
    const auto c2 = b.comb("c2", 2.0);
    const auto c3 = b.comb("c3", 2.0);
    const auto r2 = b.reg("r2");
    b.net(r1, c1);
    b.net(c1, c2);
    b.net(c2, c3);
    b.net(c3, r2);
  }
  EXPECT_LT(a.run().criticalPathNs, b.run().criticalPathNs);
}

TEST(Sta, RegistersBreakPaths) {
  // Same combinational cells, but with a register in the middle: the
  // critical segment halves.
  StaFixture chained;
  {
    const auto r1 = chained.reg("r1");
    const auto c1 = chained.comb("c1", 3.0);
    const auto c2 = chained.comb("c2", 3.0);
    const auto r2 = chained.reg("r2");
    chained.net(r1, c1);
    chained.net(c1, c2);
    chained.net(c2, r2);
  }
  StaFixture broken;
  {
    const auto r1 = broken.reg("r1");
    const auto c1 = broken.comb("c1", 3.0);
    const auto mid = broken.reg("mid");
    const auto c2 = broken.comb("c2", 3.0);
    const auto r2 = broken.reg("r2");
    broken.net(r1, c1);
    broken.net(c1, mid);
    broken.net(mid, c2);
    broken.net(c2, r2);
  }
  EXPECT_LT(broken.run().criticalPathNs, chained.run().criticalPathNs);
}

TEST(Sta, WnsAndFmaxConsistent) {
  StaFixture f;
  const auto r1 = f.reg("r1");
  const auto c1 = f.comb("c1", 4.0);
  const auto r2 = f.reg("r2");
  f.net(r1, c1);
  f.net(c1, r2);
  TimingConfig cfg;
  cfg.targetClockNs = 10.0;
  cfg.clockUncertaintyNs = 1.25;
  const auto report = f.run(cfg);
  EXPECT_NEAR(report.wnsNs,
              10.0 - (report.criticalPathNs + 1.25), 1e-9);
  EXPECT_NEAR(report.maxFrequencyMhz,
              1000.0 / (report.criticalPathNs + 1.25), 1e-6);
}

TEST(Sta, CombinationalCyclesTreatedAsRegistered) {
  StaFixture f;
  const auto c1 = f.comb("c1", 1.0);
  const auto c2 = f.comb("c2", 1.0);
  f.net(c1, c2);
  f.net(c2, c1);  // cycle (cross-coupled shared units)
  const auto report = f.run();
  EXPECT_EQ(report.combinationalCycleCells, 2u);
  EXPECT_GT(report.criticalPathNs, 0.0);  // still finite
}

TEST(Sta, CriticalNetIdentified) {
  StaFixture f;
  const auto r1 = f.reg("r1");
  const auto slow = f.comb("slow", 6.0);
  const auto fast = f.comb("fast", 0.5);
  const auto r2 = f.reg("r2");
  const auto r3 = f.reg("r3");
  f.net(r1, slow);
  f.net(slow, r2);
  f.net(r1, fast);
  f.net(fast, r3);
  const auto report = f.run();
  ASSERT_NE(report.criticalNet, rtl::kInvalidNet);
  // The critical net is driven by the slow cell.
  EXPECT_EQ(f.nl.net(report.criticalNet).driver, slow);
}

TEST(Sta, CongestionPenaltySlowsNets) {
  // Two identical designs; one analyzed with zero congestion penalty. With
  // saturated channels (tiny capacity device is hard to build here), instead
  // verify the knob is monotone: higher penalty never reduces the critical
  // path.
  StaFixture f;
  const auto r1 = f.reg("r1");
  const auto c1 = f.comb("c1", 2.0);
  const auto r2 = f.reg("r2");
  f.net(r1, c1);
  f.net(c1, r2);
  TimingConfig noPen;
  noPen.congestionPenaltyNs = 0.0;
  TimingConfig bigPen;
  bigPen.congestionPenaltyNs = 5.0;
  EXPECT_LE(f.run(noPen).criticalPathNs, f.run(bigPen).criticalPathNs);
}

}  // namespace
}  // namespace hcp::fpga
