#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/serialize.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"

namespace hcp::ml {
namespace {

Dataset makeData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(6);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(6);
    for (auto& v : x) v = rng.uniformReal(-2, 2);
    data.add(x, 3 * x[0] * x[1] - x[2] + rng.normal(0, 0.1));
  }
  return data;
}

/// Round-trip property: saved+loaded models predict bit-identically.
template <typename Model>
void roundTrip(Model&& model, const Dataset& data) {
  model.fit(data);
  std::stringstream buffer;
  saveModel(model, buffer);
  const auto restored = loadModel(buffer);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), model.name());
  for (std::size_t i = 0; i < std::min<std::size_t>(50, data.size()); ++i)
    EXPECT_DOUBLE_EQ(restored->predict(data.row(i)),
                     model.predict(data.row(i)));
}

TEST(Serialize, LassoRoundTrip) {
  roundTrip(LassoRegression({.alpha = 0.05}), makeData(300, 1));
}

TEST(Serialize, MlpRoundTrip) {
  MlpConfig cfg;
  cfg.hiddenLayers = {16, 8};
  cfg.maxEpochs = 15;
  roundTrip(MlpRegressor(cfg), makeData(300, 2));
}

TEST(Serialize, GbrtRoundTrip) {
  GbrtConfig cfg;
  cfg.numEstimators = 40;
  roundTrip(Gbrt(cfg), makeData(300, 3));
}

TEST(Serialize, GbrtImportanceSurvives) {
  const auto data = makeData(400, 4);
  Gbrt model({.numEstimators = 50});
  model.fit(data);
  std::stringstream buffer;
  saveModel(model, buffer);
  const auto restored = loadModel(buffer);
  const auto& restoredGbrt = dynamic_cast<const Gbrt&>(*restored);
  const auto a = model.featureImportance();
  const auto b = restoredGbrt.featureImportance();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) EXPECT_DOUBLE_EQ(a[f], b[f]);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buffer("not a model at all");
  EXPECT_THROW(loadModel(buffer), hcp::Error);
}

TEST(Serialize, RejectsTruncated) {
  const auto data = makeData(100, 5);
  Gbrt model({.numEstimators = 10});
  model.fit(data);
  std::stringstream buffer;
  saveModel(model, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(loadModel(cut), hcp::Error);
}

TEST(Serialize, FileRoundTrip) {
  const auto data = makeData(200, 6);
  LassoRegression model;
  model.fit(data);
  const std::string path = "serialize_test_model.tmp";
  saveModelToFile(model, path);
  const auto restored = loadModelFromFile(path);
  EXPECT_DOUBLE_EQ(restored->predict(data.row(0)), model.predict(data.row(0)));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(loadModelFromFile("/nonexistent/model.hcp"), hcp::Error);
}

/// Writes `content` to a fresh temp file and returns its path.
std::string writeFile(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
  return path;
}

std::string savedModelText() {
  LassoRegression model;
  model.fit(makeData(100, 7));
  std::stringstream buffer;
  saveModel(model, buffer);
  return buffer.str();
}

TEST(Serialize, FileErrorsNameTheOffendingPath) {
  const std::string full = savedModelText();
  const std::string path =
      writeFile("serialize_test_truncated.tmp", full.substr(0, full.size() / 2));
  try {
    loadModelFromFile(path);
    FAIL() << "truncated model file must not load";
  } catch (const hcp::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error message must name the file: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, FileRejectsTrailingGarbage) {
  const std::string path = writeFile("serialize_test_trailing.tmp",
                                     savedModelText() + "\nextra junk");
  try {
    loadModelFromFile(path);
    FAIL() << "model file with trailing bytes must not load";
  } catch (const hcp::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trailing"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Serialize, FileRejectsConcatenatedModels) {
  const std::string one = savedModelText();
  const std::string path = writeFile("serialize_test_double.tmp", one + one);
  EXPECT_THROW(loadModelFromFile(path), hcp::Error);
  std::remove(path.c_str());
}

// --- save failure paths -----------------------------------------------------
//
// A model save is a user-requested artifact: unlike the flow cache it must
// fail loudly (hcp::IoError naming the path, exit 5 in hcp_cli) and must
// never leave a partial or temp file behind — the previous model, if any,
// stays intact.

/// Names of all files in the current directory that start with `stem`.
std::vector<std::string> filesMatching(const std::string& stem) {
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::filesystem::current_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem, 0) == 0) names.push_back(name);
  }
  return names;
}

class SaveFailure : public ::testing::Test {
 protected:
  void TearDown() override { support::failpoint::clear(); }
};

TEST_F(SaveFailure, InjectedWriteFailureThrowsIoErrorAndLeavesNoFile) {
  LassoRegression model;
  model.fit(makeData(100, 8));
  const std::string path = "serialize_test_savefail.tmp";

  support::failpoint::configure("model.write:1");
  try {
    saveModelToFile(model, path);
    FAIL() << "injected write failure must throw";
  } catch (const hcp::IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the destination: " << e.what();
  }
  // No destination file, no temp-file litter.
  EXPECT_TRUE(filesMatching(path).empty());

  // Budget spent: the same call now succeeds and the model loads back.
  saveModelToFile(model, path);
  EXPECT_NE(loadModelFromFile(path), nullptr);
  std::remove(path.c_str());
}

TEST_F(SaveFailure, FailedSaveKeepsThePreviousModelIntact) {
  const std::string path = "serialize_test_keepold.tmp";
  LassoRegression old;
  old.fit(makeData(100, 9));
  saveModelToFile(old, path);
  std::ifstream before(path, std::ios::binary);
  std::stringstream beforeBytes;
  beforeBytes << before.rdbuf();

  Gbrt replacement({.numEstimators = 10});
  replacement.fit(makeData(100, 10));
  support::failpoint::configure("model.rename:1");
  EXPECT_THROW(saveModelToFile(replacement, path), hcp::IoError);

  // The old model is untouched, byte for byte, and still loads.
  std::ifstream after(path, std::ios::binary);
  std::stringstream afterBytes;
  afterBytes << after.rdbuf();
  EXPECT_EQ(beforeBytes.str(), afterBytes.str());
  EXPECT_EQ(loadModelFromFile(path)->name(), old.name());
  EXPECT_EQ(filesMatching(path).size(), 1u);
  std::remove(path.c_str());
}

TEST_F(SaveFailure, UnwritableDestinationReportsPathAndErrno) {
  LassoRegression model;
  model.fit(makeData(50, 11));
  try {
    saveModelToFile(model, "/nonexistent-dir/model.hcp");
    FAIL() << "saving into a missing directory must throw";
  } catch (const hcp::IoError& e) {
    EXPECT_EQ(e.path(), "/nonexistent-dir/model.hcp");
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir/model.hcp"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace hcp::ml
