#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hls/transforms.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace hcp::hls {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Opcode;
using ir::OpId;

std::unique_ptr<Function> simpleLoopFn(std::uint64_t trip) {
  auto fn = std::make_unique<Function>("f");
  Builder b(*fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  const OpId x = b.readPort(in);
  b.beginLoop("L", trip);
  const OpId idx = b.constant(0, 8);
  const OpId y = b.add(x, idx);
  b.endLoop();
  b.writePort(out, y);
  b.ret();
  return fn;
}

TEST(Unroll, ReplicatesBodyOps) {
  auto fn = simpleLoopFn(8);
  const std::size_t before = fn->numOps();
  unrollLoop(*fn, 1, 4);
  // Body = {const, add}; three extra copies.
  EXPECT_EQ(fn->numOps(), before + 3 * 2);
  EXPECT_EQ(fn->loop(1).tripCount, 2u);
  EXPECT_EQ(fn->loop(1).unrollFactor, 4u);
  ir::verifyOrThrow(*fn);
}

TEST(Unroll, FactorClampedToTrip) {
  auto fn = simpleLoopFn(3);
  unrollLoop(*fn, 1, 99);
  EXPECT_EQ(fn->loop(1).tripCount, 1u);
  EXPECT_EQ(fn->loop(1).unrollFactor, 3u);
  ir::verifyOrThrow(*fn);
}

TEST(Unroll, FactorOneIsNoop) {
  auto fn = simpleLoopFn(8);
  const std::size_t before = fn->numOps();
  unrollLoop(*fn, 1, 1);
  EXPECT_EQ(fn->numOps(), before);
}

TEST(Unroll, ReplicasShareOrigin) {
  auto fn = simpleLoopFn(8);
  unrollLoop(*fn, 1, 4);
  // Find the add ops; all must share one originOp (the filter's group key).
  std::map<OpId, int> groups;
  for (OpId id = 0; id < fn->numOps(); ++id)
    if (fn->op(id).opcode == Opcode::Add) ++groups[fn->op(id).originOp];
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->second, 4);
}

TEST(Unroll, InductionConstantsAdvance) {
  auto fn = simpleLoopFn(8);
  unrollLoop(*fn, 1, 4);
  std::set<std::int64_t> values;
  for (OpId id = 0; id < fn->numOps(); ++id)
    if (fn->op(id).opcode == Opcode::Const && fn->op(id).loop == 1)
      values.insert(fn->op(id).constValue);
  // 0, 1, 2, 3 — replicas model i, i+1, ...
  EXPECT_EQ(values.size(), 4u);
  EXPECT_TRUE(values.count(3));
}

TEST(Unroll, NestedLoopsReplicated) {
  auto fn = std::make_unique<Function>("f");
  Builder b(*fn);
  const auto out = b.outPort("o", 8);
  b.beginLoop("outer", 4);
  b.beginLoop("inner", 2);
  const OpId c = b.constant(1, 8);
  b.endLoop();
  b.endLoop();
  b.writePort(out, c);
  b.ret();
  const std::size_t loopsBefore = fn->numLoops();
  unrollLoop(*fn, 1, 2);  // unroll outer
  EXPECT_EQ(fn->numLoops(), loopsBefore + 1);  // a copy of inner
  ir::verifyOrThrow(*fn);
}

TEST(ArrayPartition, DirectivesApplied) {
  auto fn = std::make_unique<Function>("f");
  Builder b(*fn);
  const auto arr = b.array("buf", 64, 16);
  const auto arr2 = b.array("other", 64, 16);
  b.ret();
  DirectiveSet dirs;
  dirs.partition("f", "buf", 8);
  dirs.partitionComplete("f", "other");
  applyArrayPartition(*fn, dirs);
  EXPECT_EQ(fn->array(arr).banks, 8u);
  EXPECT_EQ(fn->array(arr2).banks, 64u);
}

TEST(Pipeline, MarksLoop) {
  auto fn = simpleLoopFn(8);
  DirectiveSet dirs;
  dirs.pipeline("f", "L", 2);
  applyPipeline(*fn, dirs);
  EXPECT_TRUE(fn->loop(1).pipelined);
  EXPECT_EQ(fn->loop(1).initiationInterval, 2u);
}

// --- inlining ------------------------------------------------------------

Module makeCallerCallee() {
  Module mod("m");
  {
    auto callee = std::make_unique<Function>("leaf");
    Builder b(*callee);
    const auto a = b.inPort("a", 16);
    const auto bPort = b.inPort("b", 16);
    const auto out = b.outPort("r", 16);
    const OpId sum = b.add(b.readPort(a), b.readPort(bPort));
    b.writePort(out, sum);
    b.ret();
    mod.addFunction(std::move(callee));
  }
  {
    auto top = std::make_unique<Function>("top");
    Builder b(*top);
    const auto in = b.inPort("x", 16);
    const auto out = b.outPort("y", 16);
    const OpId x = b.readPort(in);
    const OpId r1 = b.call("leaf", {x, x}, 16);
    const OpId r2 = b.call("leaf", {r1, x}, 16);
    b.writePort(out, r2);
    b.ret();
    mod.addFunction(std::move(top));
  }
  mod.setTop("top");
  return mod;
}

TEST(Inline, SplicesBodyPerCallSite) {
  Module mod = makeCallerCallee();
  DirectiveSet dirs;
  dirs.inlineFunction("leaf");
  applyInline(mod, dirs);
  ir::verifyOrThrow(mod);
  const ir::Function& top = mod.top();
  std::size_t adds = 0, calls = 0;
  for (OpId id = 0; id < top.numOps(); ++id) {
    if (top.op(id).opcode == Opcode::Add) ++adds;
    if (top.op(id).opcode == Opcode::Call) ++calls;
  }
  EXPECT_EQ(adds, 2u);   // one per call site
  EXPECT_EQ(calls, 0u);  // all inlined
}

TEST(Inline, PreservesDataflow) {
  Module mod = makeCallerCallee();
  DirectiveSet dirs;
  dirs.inlineFunction("leaf");
  applyInline(mod, dirs);
  // The second add must (transitively) consume the first one.
  const ir::Function& top = mod.top();
  std::vector<OpId> adds;
  for (OpId id = 0; id < top.numOps(); ++id)
    if (top.op(id).opcode == Opcode::Add) adds.push_back(id);
  ASSERT_EQ(adds.size(), 2u);
  // Walk the alias chain backwards from the later add.
  bool connected = false;
  std::vector<OpId> stack{adds[1]};
  std::set<OpId> seen;
  while (!stack.empty()) {
    const OpId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    if (cur == adds[0]) {
      connected = true;
      break;
    }
    for (const auto& use : top.op(cur).operands) stack.push_back(use.producer);
  }
  EXPECT_TRUE(connected);
}

TEST(Inline, TagsOpsWithOrigin) {
  Module mod = makeCallerCallee();
  DirectiveSet dirs;
  dirs.inlineFunction("leaf");
  applyInline(mod, dirs);
  const ir::Function& top = mod.top();
  bool tagged = false;
  for (OpId id = 0; id < top.numOps(); ++id)
    if (top.op(id).name.rfind("leaf_i", 0) == 0) tagged = true;
  EXPECT_TRUE(tagged);
}

TEST(Inline, NestedInlineBottomUp) {
  Module mod("m");
  {
    auto leaf = std::make_unique<Function>("leaf");
    Builder b(*leaf);
    const auto a = b.inPort("a", 8);
    const auto out = b.outPort("r", 8);
    b.writePort(out, b.neg(b.readPort(a)));
    b.ret();
    mod.addFunction(std::move(leaf));
  }
  {
    auto mid = std::make_unique<Function>("mid");
    Builder b(*mid);
    const auto a = b.inPort("a", 8);
    const auto out = b.outPort("r", 8);
    b.writePort(out, b.call("leaf", {b.readPort(a)}, 8));
    b.ret();
    mod.addFunction(std::move(mid));
  }
  {
    auto top = std::make_unique<Function>("top");
    Builder b(*top);
    const auto a = b.inPort("a", 8);
    const auto out = b.outPort("r", 8);
    b.writePort(out, b.call("mid", {b.readPort(a)}, 8));
    b.ret();
    mod.addFunction(std::move(top));
  }
  mod.setTop("top");
  DirectiveSet dirs;
  dirs.inlineFunction("leaf").inlineFunction("mid");
  applyInline(mod, dirs);
  ir::verifyOrThrow(mod);
  for (ir::OpId id = 0; id < mod.top().numOps(); ++id)
    EXPECT_NE(mod.top().op(id).opcode, Opcode::Call);
}

TEST(Inline, CalleeArraysCopiedPerSite) {
  Module mod("m");
  {
    auto leaf = std::make_unique<Function>("leaf");
    Builder b(*leaf);
    const auto a = b.inPort("a", 8);
    const auto out = b.outPort("r", 8);
    const auto arr = b.array("scratch", 16, 8);
    const OpId x = b.readPort(a);
    b.store(arr, b.constant(0, 4), x);
    b.writePort(out, b.load(arr, b.constant(0, 4)));
    b.ret();
    mod.addFunction(std::move(leaf));
  }
  {
    auto top = std::make_unique<Function>("top");
    Builder b(*top);
    const auto a = b.inPort("a", 8);
    const auto out = b.outPort("r", 8);
    const OpId x = b.readPort(a);
    const OpId r1 = b.call("leaf", {x}, 8);
    const OpId r2 = b.call("leaf", {r1}, 8);
    b.writePort(out, r2);
    b.ret();
    mod.addFunction(std::move(top));
  }
  mod.setTop("top");
  DirectiveSet dirs;
  dirs.inlineFunction("leaf");
  applyInline(mod, dirs);
  EXPECT_EQ(mod.top().numArrays(), 2u);  // one copy per call site
  ir::verifyOrThrow(mod);
}

// --- replication (case-study step 2) -------------------------------------

TEST(ReplicateArray, RedistributesLoads) {
  auto fn = std::make_unique<Function>("f");
  Builder b(*fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  const auto arr = b.array("shared", 32, 16);
  const OpId x = b.readPort(in);
  b.store(arr, b.constant(0, 8), x);
  OpId acc = b.load(arr, b.constant(1, 8));
  for (int i = 2; i < 8; ++i)
    acc = b.add(acc, b.load(arr, b.constant(i, 8)));
  b.writePort(out, acc);
  b.ret();

  const auto replicas = replicateArray(*fn, arr, 2);
  ASSERT_EQ(replicas.size(), 2u);
  ir::verifyOrThrow(*fn);

  std::map<ir::ArrayId, int> loadsPerArray;
  for (OpId id = 0; id < fn->numOps(); ++id)
    if (fn->op(id).opcode == Opcode::Load &&
        fn->op(id).loop == ir::kRootRegion)
      ++loadsPerArray[fn->op(id).array];
  // The 7 original loads split between the two replicas; none remain on the
  // original outside the copy loop.
  EXPECT_EQ(loadsPerArray.count(arr), 0u);
  EXPECT_EQ(loadsPerArray[replicas[0]] + loadsPerArray[replicas[1]], 7);
  EXPECT_GE(loadsPerArray[replicas[0]], 3);
}

TEST(ReplicateArray, AddsPipelinedCopyLoop) {
  auto fn = std::make_unique<Function>("f");
  Builder b(*fn);
  const auto arr = b.array("shared", 16, 8);
  const OpId v = b.constant(5, 8);
  b.store(arr, b.constant(0, 8), v);
  b.ret();
  const std::size_t loopsBefore = fn->numLoops();
  replicateArray(*fn, arr, 3);
  ASSERT_EQ(fn->numLoops(), loopsBefore + 1);
  const auto& loop = fn->loop(static_cast<ir::LoopId>(loopsBefore));
  EXPECT_TRUE(loop.pipelined);
  EXPECT_EQ(loop.tripCount, 16u);
}

}  // namespace
}  // namespace hcp::hls
