// End-to-end tests of hls::synthesize and the function reports.
#include <gtest/gtest.h>

#include "apps/face_detection.hpp"
#include "hls/design.hpp"
#include "ir/builder.hpp"

namespace hcp::hls {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::OpId;

std::unique_ptr<Module> smallModule(std::uint32_t banks = 1) {
  auto mod = std::make_unique<Module>("m");
  auto fn = std::make_unique<Function>("top");
  Builder b(*fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 32);
  const auto arr = b.array("mem", 2048, 16);
  fn->array(arr).banks = banks;
  const OpId x = b.readPort(in);
  b.store(arr, b.constant(1, 8), x);
  const OpId v = b.load(arr, b.constant(2, 8));
  const OpId m = b.mul(v, v);
  b.writePort(out, m);
  b.ret();
  mod->addFunction(std::move(fn));
  mod->setTop("top");
  return mod;
}

TEST(Synthesize, ReportTotalsArePositiveAndConsistent) {
  const auto design = synthesize(smallModule(), {}, {});
  const FunctionReport& r = design.top().report;
  EXPECT_GT(r.totalRes.total(), 0.0);
  EXPECT_NEAR(r.totalRes.lut,
              r.fuRes.lut + r.regRes.lut + r.memRes.lut + r.muxRes.lut +
                  r.calleeRes.lut,
              1e-9);
  EXPECT_GT(r.latency, 0u);
  EXPECT_EQ(r.numSteps, design.top().schedule.numSteps);
  EXPECT_GT(r.estimatedClockNs, 0.0);
  EXPECT_DOUBLE_EQ(r.targetClockNs, 10.0);
}

TEST(Synthesize, MemoryStatsMatchArrays) {
  const auto design = synthesize(smallModule(4), {}, {});
  const MemoryStats& mem = design.top().report.memory;
  EXPECT_EQ(mem.words, 2048u);
  EXPECT_EQ(mem.banks, 4u);
  EXPECT_EQ(mem.bits, 2048u * 16);
  EXPECT_EQ(mem.primitives, 2048u * 16 * 4);
  // Deep array -> BRAM in the report.
  EXPECT_GT(design.top().report.memRes.bram, 0.0);
}

TEST(Synthesize, CompletePartitionMovesMemoryToRegisters) {
  DirectiveSet dirs;
  dirs.partitionComplete("top", "mem");
  const auto design = synthesize(smallModule(), dirs, {});
  EXPECT_EQ(design.top().report.memRes.bram, 0.0);
  EXPECT_GT(design.top().report.memRes.ff, 0.0);
}

TEST(Synthesize, FrontendPassesShrinkTheDesign) {
  auto mk = [] {
    auto mod = std::make_unique<Module>("m");
    auto fn = std::make_unique<Function>("top");
    Builder b(*fn);
    const auto out = b.outPort("o", 16);
    // Constant arithmetic + dead ops.
    const OpId k = b.mul(b.constant(3, 8), b.constant(5, 8));
    b.add(k, k);  // dead
    b.writePort(out, k);
    b.ret();
    mod->addFunction(std::move(fn));
    mod->setTop("top");
    return mod;
  };
  SynthesisOptions with;
  SynthesisOptions without;
  without.runFrontendPasses = false;
  const auto a = synthesize(mk(), {}, with);
  const auto bDesign = synthesize(mk(), {}, without);
  EXPECT_LT(a.topFunction().numOps(), bDesign.topFunction().numOps());
}

TEST(Synthesize, CalleeResourcesCountedPerInstance) {
  auto mod = std::make_unique<Module>("m");
  {
    auto leaf = std::make_unique<Function>("leaf");
    Builder b(*leaf);
    const auto a = b.inPort("a", 16);
    const auto out = b.outPort("r", 32);
    const OpId x = b.readPort(a);
    b.writePort(out, b.mul(x, x));
    b.ret();
    mod->addFunction(std::move(leaf));
  }
  {
    auto top = std::make_unique<Function>("top");
    Builder b(*top);
    const auto in = b.inPort("i", 16);
    const auto out = b.outPort("o", 32);
    const OpId x = b.readPort(in);
    const OpId c1 = b.call("leaf", {x}, 32);
    const OpId c2 = b.call("leaf", {b.trunc(c1, 16)}, 32);
    b.writePort(out, c2);
    b.ret();
    mod->addFunction(std::move(top));
  }
  mod->setTop("top");
  SynthesisOptions opts;
  opts.schedule.callInstanceLimit = 1;  // force the two calls to share
  const auto design = synthesize(std::move(mod), {}, opts);
  const auto& top = design.top();
  // One shared instance: calleeRes equals one leaf footprint.
  const double leafLut =
      design.functions[design.module->findFunction("leaf")]
          .report.totalRes.lut;
  EXPECT_NEAR(top.report.calleeRes.lut, leafLut, 1e-9);
}

TEST(Synthesize, DirectivesChangeLatencyProfile) {
  apps::FaceDetectionConfig cfg;
  cfg.stages = 4;
  auto withApp = apps::faceDetection(cfg);
  cfg.withDirectives = false;
  auto withoutApp = apps::faceDetection(cfg);
  const auto with =
      synthesize(std::move(withApp.module), withApp.directives, {});
  const auto without =
      synthesize(std::move(withoutApp.module), withoutApp.directives, {});
  EXPECT_LT(with.top().report.latency, without.top().report.latency);
  EXPECT_GT(with.top().report.totalRes.lut,
            without.top().report.totalRes.lut);
}

TEST(Synthesize, GraphHasMergedShareNodes) {
  // A sequential multiplier chain shares units; the synthesized graph must
  // reflect the merge (Fig 4).
  auto mod = std::make_unique<Module>("m");
  auto fn = std::make_unique<Function>("top");
  Builder b(*fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  OpId v = b.readPort(in);
  for (int i = 0; i < 4; ++i) v = b.trunc(b.mul(v, v), 16);
  b.writePort(out, v);
  b.ret();
  mod->addFunction(std::move(fn));
  mod->setTop("top");
  const auto design = synthesize(std::move(mod), {}, {});
  bool merged = false;
  const auto& graph = design.top().graph;
  for (ir::NodeId n = 0; n < graph.numNodes(); ++n)
    if (graph.node(n).alive &&
        graph.node(n).kind == ir::DependencyGraph::NodeKind::Merged)
      merged = true;
  EXPECT_EQ(merged, design.top().binding.sharedUnits > 0);
}

TEST(Synthesize, InvalidModuleRejected) {
  auto mod = std::make_unique<Module>("m");
  auto fn = std::make_unique<Function>("top");
  // No ret -> verifier must reject during synthesis.
  mod->addFunction(std::move(fn));
  mod->setTop("top");
  EXPECT_THROW(synthesize(std::move(mod), {}, {}), hcp::Error);
}

}  // namespace
}  // namespace hcp::hls
