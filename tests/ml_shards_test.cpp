// Shard format, ShardSet scanning, streaming RowSource and the
// streamed-vs-in-memory byte-identity contract (DESIGN.md §19).
#include <gtest/gtest.h>

#include <sstream>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/serialize.hpp"
#include "ml/shards.hpp"
#include "ml/validation.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace hcp::ml::shards {
namespace {

std::vector<ShardSample> makeSamples(std::size_t n, std::size_t d,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ShardSample> samples(n);
  for (ShardSample& s : samples) {
    s.features.resize(d);
    for (double& f : s.features) f = rng.uniformReal(-2, 2);
    s.vertical = 3 * s.features[0] - s.features[1] + rng.normal(0, 0.05);
    s.horizontal = -s.features[0] + 2 * s.features[2] + rng.normal(0, 0.05);
    s.average = (s.vertical + s.horizontal) / 2;
  }
  return samples;
}

ShardMeta meta(const std::string& design) {
  return ShardMeta{design, "xc7z020like", 7};
}

/// Writes `numShards` synthetic shards into `dir` and returns their keys.
std::vector<std::string> writeCorpus(const std::string& dir,
                                     std::size_t numShards, std::size_t n,
                                     std::size_t d) {
  std::vector<std::string> keys;
  for (std::size_t s = 0; s < numShards; ++s) {
    const std::string design = "design" + std::to_string(s);
    const std::string key = shardKey(design, "xc7z020like", 7, d, "salt");
    writeShard(dir, key, meta(design), makeSamples(n, d, 100 + s));
    keys.push_back(key);
  }
  return keys;
}

std::string modelBytes(const Regressor& model) {
  std::ostringstream os;
  saveModel(model, os);
  return os.str();
}

TEST(ShardKey, DeterministicAndInputSensitive) {
  const std::string base = shardKey("a", "dev", 7, 302, "salt");
  EXPECT_EQ(base, shardKey("a", "dev", 7, 302, "salt"));
  EXPECT_EQ(base.size(), 16u);
  EXPECT_NE(base, shardKey("b", "dev", 7, 302, "salt"));
  EXPECT_NE(base, shardKey("a", "dev2", 7, 302, "salt"));
  EXPECT_NE(base, shardKey("a", "dev", 8, 302, "salt"));
  EXPECT_NE(base, shardKey("a", "dev", 7, 301, "salt"));
  EXPECT_NE(base, shardKey("a", "dev", 7, 302, "salt2"));
  // Length-prefixed hashing: shifting a byte across the field boundary
  // must change the key.
  EXPECT_NE(shardKey("ab", "c", 7, 1, ""), shardKey("a", "bc", 7, 1, ""));
}

TEST(Shards, RoundTripPreservesEverything) {
  test::TempDir dir(test::uniqueStem("shards", "dir"));
  const auto samples = makeSamples(20, 5, 1);
  const std::string key = shardKey("d", "dev", 7, 5, "s");
  const std::string path = writeShard(dir.dir(), key, meta("d"), samples);

  const ShardData data = readShard(path);
  EXPECT_EQ(data.info.key, key);
  EXPECT_EQ(data.info.numFeatures, 5u);
  EXPECT_EQ(data.info.numSamples, 20u);
  EXPECT_EQ(data.meta.design, "d");
  EXPECT_EQ(data.meta.device, "xc7z020like");
  EXPECT_EQ(data.meta.seed, 7u);
  ASSERT_EQ(data.samples.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(data.samples[i].id, sampleId(key, i));
    EXPECT_EQ(data.samples[i].vertical, samples[i].vertical);
    EXPECT_EQ(data.samples[i].horizontal, samples[i].horizontal);
    EXPECT_EQ(data.samples[i].average, samples[i].average);
    EXPECT_EQ(data.samples[i].features, samples[i].features);
  }
}

TEST(Shards, WriteIsByteDeterministic) {
  test::TempDir dir(test::uniqueStem("shards", "det"));
  const auto samples = makeSamples(10, 4, 2);
  const std::string key = shardKey("d", "dev", 7, 4, "s");
  const std::string path = writeShard(dir.dir(), key, meta("d"), samples);
  const std::string first = test::slurpFile(path);
  writeShard(dir.dir(), key, meta("d"), samples);
  EXPECT_EQ(test::slurpFile(path), first);
}

TEST(Shards, EmptyShardRoundTrips) {
  test::TempDir dir(test::uniqueStem("shards", "empty"));
  const std::string key = shardKey("d", "dev", 7, 0, "s");
  const std::string path = writeShard(dir.dir(), key, meta("d"), {});
  const ShardData data = readShard(path);
  EXPECT_EQ(data.info.numSamples, 0u);
  EXPECT_TRUE(data.samples.empty());
}

TEST(Shards, RejectsInconsistentFeatureCounts) {
  test::TempDir dir(test::uniqueStem("shards", "inconsistent"));
  auto samples = makeSamples(3, 4, 3);
  samples[2].features.pop_back();
  EXPECT_THROW(writeShard(dir.dir(), shardKey("d", "dev", 7, 4, "s"),
                          meta("d"), samples),
               Error);
}

// --- corruption battery -------------------------------------------------

class ShardCorruption : public ::testing::Test {
 protected:
  std::string freshShard(const std::string& tag) {
    dir_ = std::make_unique<test::TempDir>(
        test::uniqueStem("shards_corrupt", tag));
    key_ = shardKey("d", "dev", 7, 4, "s");
    return writeShard(dir_->dir(), key_, meta("d"), makeSamples(6, 4, 4));
  }

  std::unique_ptr<test::TempDir> dir_;
  std::string key_;
};

TEST_F(ShardCorruption, TruncatedPayloadRejected) {
  const std::string path = freshShard("trunc");
  const std::string bytes = test::slurpFile(path);
  test::writeRaw(path, bytes.substr(0, bytes.size() - 40));
  EXPECT_THROW(readShard(path), Error);
}

TEST_F(ShardCorruption, FlippedPayloadByteRejected) {
  const std::string path = freshShard("flip");
  std::string bytes = test::slurpFile(path);
  bytes[bytes.size() - 10] = bytes[bytes.size() - 10] == '1' ? '2' : '1';
  test::writeRaw(path, bytes);
  EXPECT_THROW(readShard(path), Error);
}

TEST_F(ShardCorruption, TrailingGarbageRejected) {
  const std::string path = freshShard("trailing");
  test::writeRaw(path, test::slurpFile(path) + "extra\n");
  EXPECT_THROW(readShard(path), Error);
}

TEST_F(ShardCorruption, VersionSkewRejected) {
  const std::string path = freshShard("skew");
  std::string bytes = test::slurpFile(path);
  const std::string want = "hcp-shard 1 ";
  ASSERT_EQ(bytes.compare(0, want.size(), want), 0);
  bytes.replace(0, want.size(), "hcp-shard 2 ");
  test::writeRaw(path, bytes);
  try {
    readShard(path);
    FAIL() << "version skew not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version skew"), std::string::npos);
  }
}

TEST_F(ShardCorruption, RenamedFileRejected) {
  const std::string path = freshShard("rename");
  const std::string other =
      (std::filesystem::path(dir_->dir()) / "0123456789abcdef.shard")
          .string();
  std::filesystem::rename(path, other);
  EXPECT_THROW(readShard(other), Error);  // header key != file stem
}

TEST_F(ShardCorruption, NotAShardRejected) {
  const std::string path = freshShard("junk");
  test::writeRaw(path, "this is not a shard\n");
  EXPECT_THROW(readShard(path), Error);
}

TEST_F(ShardCorruption, ScanDetectsHeaderCorruption) {
  const std::string path = freshShard("scan");
  std::string bytes = test::slurpFile(path);
  test::writeRaw(path, "garbage " + bytes);
  EXPECT_THROW(ShardSet{dir_->dir()}, Error);
}

// --- failpoints ---------------------------------------------------------

TEST(ShardFailpoints, WriteSitesRaiseIoError) {
  for (const char* site : {"shard.open", "shard.write", "shard.rename"}) {
    test::TempDir dir(test::uniqueStem("shards_fp", site));
    support::failpoint::ScopedFailpoints fp(std::string(site) + ":1");
    EXPECT_THROW(writeShard(dir.dir(), shardKey("d", "dev", 7, 3, "s"),
                            meta("d"), makeSamples(4, 3, 5)),
                 IoError)
        << site;
  }
}

TEST(ShardFailpoints, ReadSiteRaisesError) {
  test::TempDir dir(test::uniqueStem("shards_fp", "read"));
  const std::string path = writeShard(
      dir.dir(), shardKey("d", "dev", 7, 3, "s"), meta("d"),
      makeSamples(4, 3, 6));
  support::failpoint::ScopedFailpoints fp("shard.read:1");
  EXPECT_THROW(readShard(path), Error);
  EXPECT_NO_THROW(readShard(path));  // count exhausted
}

// --- ShardSet -----------------------------------------------------------

TEST(ShardSet, ScansInKeyOrderWithTotals) {
  test::TempDir dir(test::uniqueStem("shardset", "scan"));
  auto keys = writeCorpus(dir.dir(), 3, 10, 4);
  std::sort(keys.begin(), keys.end());

  const ShardSet set(dir.dir());
  EXPECT_EQ(set.numShards(), 3u);
  EXPECT_EQ(set.totalSamples(), 30u);
  EXPECT_EQ(set.numFeatures(), 4u);
  for (std::size_t i = 0; i < set.numShards(); ++i)
    EXPECT_EQ(set.info(i).key, keys[i]);
  const ShardData data = set.load(1);
  EXPECT_EQ(data.info.key, keys[1]);
}

TEST(ShardSet, MissingDirectoryRejected) {
  test::TempDir dir(test::uniqueStem("shardset", "missing"));
  EXPECT_THROW(ShardSet{dir.dir()}, Error);
}

TEST(ShardSet, EmptyShardsTolerated) {
  test::TempDir dir(test::uniqueStem("shardset", "emptyok"));
  writeCorpus(dir.dir(), 2, 8, 4);
  // An empty shard has 0 features in its header; the set must not treat
  // that as a feature-count conflict.
  writeShard(dir.dir(), shardKey("e", "dev", 7, 0, "s"), meta("e"), {});
  const ShardSet set(dir.dir());
  EXPECT_EQ(set.numShards(), 3u);
  EXPECT_EQ(set.totalSamples(), 16u);
  EXPECT_EQ(set.numFeatures(), 4u);
}

TEST(ShardSet, FeatureCountMismatchRejected) {
  test::TempDir dir(test::uniqueStem("shardset", "mismatch"));
  writeShard(dir.dir(), shardKey("a", "dev", 7, 4, "s"), meta("a"),
             makeSamples(5, 4, 8));
  writeShard(dir.dir(), shardKey("b", "dev", 7, 5, "s"), meta("b"),
             makeSamples(5, 5, 9));
  EXPECT_THROW(ShardSet{dir.dir()}, Error);
}

TEST(ShardSet, LoadDetectsFileSwappedAfterScan) {
  test::TempDir dir(test::uniqueStem("shardset", "swap"));
  writeCorpus(dir.dir(), 1, 6, 4);
  const ShardSet set(dir.dir());
  // Replace the file with a *valid* shard of different shape under the
  // same name; load() must notice the scan is stale.
  const std::string key = set.info(0).key;
  test::TempDir other(test::uniqueStem("shardset", "swap_src"));
  const std::string fresh =
      writeShard(other.dir(), key, meta("d"), makeSamples(3, 4, 10));
  std::filesystem::copy_file(
      fresh, set.info(0).path,
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(set.load(0), Error);
}

// --- ShardRowSource -----------------------------------------------------

TEST(ShardRowSource, MatchesMaterializedOrder) {
  test::TempDir dir(test::uniqueStem("rowsource", "order"));
  writeCorpus(dir.dir(), 2, 12, 4);
  const ShardSet set(dir.dir());
  const ShardRowSource source(set, Label::Vertical);
  EXPECT_EQ(source.size(), 24u);
  EXPECT_EQ(source.numFeatures(), 4u);

  // Canonical order = shards in key order, samples in ordinal order.
  std::vector<double> expected;
  for (std::size_t s = 0; s < set.numShards(); ++s)
    for (const ShardSample& row : set.load(s).samples)
      expected.push_back(row.vertical);

  std::vector<double> serial(source.size(), 0.0);
  std::size_t calls = 0;
  source.forEach([&](std::size_t i, const std::vector<double>& row, double y) {
    EXPECT_EQ(row.size(), 4u);
    serial[i] = y;
    ++calls;
  });
  EXPECT_EQ(calls, source.size());
  EXPECT_EQ(serial, expected);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    support::ScopedThreadLimit limit(threads);
    std::vector<double> parallel(source.size(), -1.0);
    source.visitParallel(
        [&](std::size_t i, const std::vector<double>&, double y) {
          parallel[i] = y;
        });
    EXPECT_EQ(parallel, expected) << threads << " threads";
  }
}

TEST(ShardRowSource, LabelSelectsTarget) {
  test::TempDir dir(test::uniqueStem("rowsource", "label"));
  writeCorpus(dir.dir(), 1, 5, 4);
  const ShardSet set(dir.dir());
  const ShardData data = set.load(0);
  for (const Label label :
       {Label::Vertical, Label::Horizontal, Label::Average}) {
    const ShardRowSource source(set, label);
    source.forEach([&](std::size_t i, const std::vector<double>&, double y) {
      const ShardSample& s = data.samples[i];
      const double want = label == Label::Vertical     ? s.vertical
                          : label == Label::Horizontal ? s.horizontal
                                                       : s.average;
      EXPECT_EQ(y, want) << labelName(label) << " sample " << i;
    });
  }
}

TEST(ShardRowSource, KeepFilterRenumbersDensely) {
  test::TempDir dir(test::uniqueStem("rowsource", "filter"));
  writeCorpus(dir.dir(), 2, 10, 3);
  const ShardSet set(dir.dir());
  const auto keep = [](std::uint64_t id) { return id % 2 == 0; };

  // Expected: kept samples in canonical order, densely renumbered.
  std::vector<double> expected;
  for (std::size_t s = 0; s < set.numShards(); ++s)
    for (const ShardSample& row : set.load(s).samples)
      if (keep(row.id)) expected.push_back(row.average);

  const ShardRowSource source(set, Label::Average, keep);
  EXPECT_EQ(source.size(), expected.size());
  ASSERT_GT(source.size(), 0u);
  ASSERT_LT(source.size(), set.totalSamples());

  std::vector<double> seen(source.size(), -1.0);
  source.forEach([&](std::size_t i, const std::vector<double>&, double y) {
    seen[i] = y;
  });
  EXPECT_EQ(seen, expected);

  support::ScopedThreadLimit limit(4);
  std::vector<double> par(source.size(), -1.0);
  source.visitParallel([&](std::size_t i, const std::vector<double>&,
                           double y) { par[i] = y; });
  EXPECT_EQ(par, expected);
}

TEST(ShardRowSource, MaterializeEqualsLoads) {
  test::TempDir dir(test::uniqueStem("rowsource", "materialize"));
  writeCorpus(dir.dir(), 2, 9, 4);
  const ShardSet set(dir.dir());
  const Dataset data = materialize(ShardRowSource(set, Label::Horizontal));
  EXPECT_EQ(data.size(), set.totalSamples());
  EXPECT_EQ(data.numFeatures(), 4u);
  std::size_t i = 0;
  for (std::size_t s = 0; s < set.numShards(); ++s)
    for (const ShardSample& row : set.load(s).samples) {
      EXPECT_EQ(data.row(i), row.features);
      EXPECT_EQ(data.target(i), row.horizontal);
      ++i;
    }
}

// --- streamed-vs-in-memory byte identity --------------------------------

TEST(StreamingFit, LassoByteIdenticalAcrossThreadCounts) {
  test::TempDir dir(test::uniqueStem("streamfit", "lasso"));
  writeCorpus(dir.dir(), 3, 40, 6);
  const ShardSet set(dir.dir());
  const ShardRowSource source(set, Label::Vertical);

  LassoRegression reference;
  reference.fit(materialize(source));
  const std::string want = modelBytes(reference);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    support::ScopedThreadLimit limit(threads);
    LassoRegression streamed;
    streamed.fitStreaming(source);
    EXPECT_EQ(modelBytes(streamed), want) << threads << " threads";
  }
}

TEST(StreamingFit, GbrtByteIdenticalAcrossThreadCounts) {
  test::TempDir dir(test::uniqueStem("streamfit", "gbrt"));
  writeCorpus(dir.dir(), 2, 50, 6);
  const ShardSet set(dir.dir());
  const ShardRowSource source(set, Label::Average);

  const GbrtConfig config{.numEstimators = 12, .maxDepth = 3};
  Gbrt reference(config);
  reference.fit(materialize(source));
  const std::string want = modelBytes(reference);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    support::ScopedThreadLimit limit(threads);
    Gbrt streamed(config);
    streamed.fitStreaming(source);
    EXPECT_EQ(modelBytes(streamed), want) << threads << " threads";
  }
}

// --- out-of-core cross-validation ---------------------------------------

TEST(FoldOfSampleId, StableBalancedAndSeedSensitive) {
  EXPECT_EQ(foldOfSampleId(12345, 7, 5), foldOfSampleId(12345, 7, 5));
  std::vector<std::size_t> counts(5, 0);
  for (std::uint64_t id = 0; id < 5000; ++id)
    ++counts[foldOfSampleId(id, 7, 5)];
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 800u);  // ~1000 expected per fold
    EXPECT_LT(c, 1200u);
  }
  std::size_t moved = 0;
  for (std::uint64_t id = 0; id < 1000; ++id)
    if (foldOfSampleId(id, 7, 5) != foldOfSampleId(id, 8, 5)) ++moved;
  EXPECT_GT(moved, 500u);  // a new seed reshuffles membership
}

TEST(CrossValidateStreaming, DeterministicAcrossThreadCounts) {
  test::TempDir dir(test::uniqueStem("cvstream", "det"));
  writeCorpus(dir.dir(), 2, 60, 5);
  const ShardSet set(dir.dir());
  const auto factory = [] { return std::make_unique<LassoRegression>(); };

  const CvResult base =
      crossValidateStreaming(factory, set, Label::Vertical, 4, 42);
  EXPECT_EQ(base.foldMae.size(), 4u);
  EXPECT_GT(base.meanMae, 0.0);
  EXPECT_LT(base.meanMae, 0.5);  // easy synthetic linear problem

  for (const std::size_t threads : {1u, 4u}) {
    support::ScopedThreadLimit limit(threads);
    const CvResult again =
        crossValidateStreaming(factory, set, Label::Vertical, 4, 42);
    EXPECT_EQ(again.foldMae, base.foldMae) << threads << " threads";
    EXPECT_EQ(again.foldMedae, base.foldMedae) << threads << " threads";
  }
}

TEST(CrossValidateStreaming, RejectsTinySets) {
  test::TempDir dir(test::uniqueStem("cvstream", "tiny"));
  writeCorpus(dir.dir(), 1, 2, 3);
  const ShardSet set(dir.dir());
  EXPECT_THROW(crossValidateStreaming(
                   [] { return std::make_unique<LassoRegression>(); }, set,
                   Label::Average, 5, 42),
               Error);
}

}  // namespace
}  // namespace hcp::ml::shards
