// Tests for the deterministic parallel execution layer: ordering, exception
// propagation, serial/parallel equivalence, nested-call safety, and the
// end-to-end determinism contract (gridSearch and GBRT training produce
// bit-identical results at 1 thread and at many threads).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/validation.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace hcp {
namespace {

using support::ScopedThreadLimit;
using support::parallelFor;
using support::parallelMap;
using support::parallelMapIndex;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ScopedThreadLimit limit(8);
  std::vector<std::atomic<int>> hits(1000);
  parallelFor(0, hits.size(), 7, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRangesWork) {
  ScopedThreadLimit limit(8);
  int calls = 0;
  parallelFor(5, 5, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(5, 6, 1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, PreservesOrderingRegardlessOfExecutionOrder) {
  ScopedThreadLimit limit(8);
  const auto out =
      parallelMapIndex(500, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);

  const std::vector<int> items{3, 1, 4, 1, 5, 9, 2, 6};
  const auto doubled = parallelMap(items, [](int v) { return 2 * v; });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(doubled[i], 2 * items[i]);
}

TEST(ParallelFor, SerialAndParallelResultsAreIdentical) {
  // Same floating-point accumulation per index: outputs must match bitwise.
  const auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 50; ++k)
      acc += static_cast<double>(i * 31 + k) * 1e-3;
    return acc;
  };
  std::vector<double> serial, parallel;
  {
    ScopedThreadLimit limit(1);
    serial = parallelMapIndex(300, body);
  }
  {
    ScopedThreadLimit limit(8);
    parallel = parallelMapIndex(300, body);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]);  // exact, not near
}

TEST(ParallelFor, PropagatesLowestIndexException) {
  ScopedThreadLimit limit(8);
  try {
    parallelFor(0, 200, 1, [](std::size_t i) {
      if (i >= 37) throw Error("failed at " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    // Every task from 37 on throws; the serial run would surface 37 first,
    // and the parallel run must surface the same one.
    EXPECT_NE(std::string(e.what()).find("failed at 37"), std::string::npos)
        << e.what();
  }
}

TEST(ParallelFor, PoolSurvivesAnExceptionAndKeepsWorking) {
  ScopedThreadLimit limit(8);
  EXPECT_THROW(
      parallelFor(0, 64, 1,
                  [](std::size_t i) {
                    if (i == 3) throw Error("boom");
                  }),
      Error);
  const auto out = parallelMapIndex(64, [](std::size_t i) { return i + 1; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ScopedThreadLimit limit(8);
  const auto out = parallelMapIndex(16, [](std::size_t i) {
    // Inner parallel call from a worker task: must run inline and still
    // produce ordered results.
    const auto inner =
        parallelMapIndex(32, [i](std::size_t j) { return i * 100 + j; });
    std::size_t sum = 0;
    for (std::size_t v : inner) sum += v;
    return sum;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::size_t expect = 0;
    for (std::size_t j = 0; j < 32; ++j) expect += i * 100 + j;
    EXPECT_EQ(out[i], expect);
  }
}

TEST(ScopedLimit, RestoresPreviousLimit) {
  const std::size_t before = support::threadLimit();
  {
    ScopedThreadLimit limit(3);
    EXPECT_EQ(support::threadLimit(), 3u);
    {
      ScopedThreadLimit inner(1);
      EXPECT_EQ(support::threadLimit(), 1u);
    }
    EXPECT_EQ(support::threadLimit(), 3u);
  }
  EXPECT_EQ(support::threadLimit(), before);
}

// --- determinism contract on the ML stack ----------------------------------

ml::Dataset syntheticData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data(6);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.uniformReal(-2, 2);
    const double y = 3 * x[0] - x[1] + 0.5 * x[2] * x[3] + rng.normal(0, 0.2);
    data.add(std::move(x), y);
  }
  return data;
}

TEST(Determinism, SubsetViewMatchesDeepSubset) {
  const auto data = syntheticData(120, 17);
  std::vector<std::size_t> idx{5, 3, 77, 0, 119, 42, 42, 8};
  const auto deep = data.subset(idx);
  const auto view = data.subsetView(idx);
  ASSERT_EQ(view.size(), deep.size());
  EXPECT_EQ(view.numFeatures(), deep.numFeatures());
  EXPECT_TRUE(view.isView());
  EXPECT_FALSE(deep.isView());
  for (std::size_t i = 0; i < deep.size(); ++i) {
    EXPECT_EQ(view.row(i), deep.row(i));
    EXPECT_EQ(view.target(i), deep.target(i));
  }
  // Models must train identically on either representation.
  ml::LassoRegression a, b;
  a.fit(deep);
  b.fit(view);
  const auto pa = a.predictAll(data);
  const auto pb = b.predictAll(data);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Determinism, GbrtFitIsBitIdenticalAcrossThreadCounts) {
  const auto data = syntheticData(400, 23);
  const auto fitAndSerialize = [&] {
    ml::GbrtConfig cfg;
    cfg.numEstimators = 40;
    ml::Gbrt model(cfg);
    model.fit(data);
    std::ostringstream os;
    model.write(os);
    return os.str();
  };
  std::string serial, parallel;
  {
    ScopedThreadLimit limit(1);
    serial = fitAndSerialize();
  }
  {
    ScopedThreadLimit limit(8);
    parallel = fitAndSerialize();
  }
  EXPECT_EQ(serial, parallel);  // full model dump, byte for byte
}

TEST(Determinism, GridSearchIsBitIdenticalAcrossThreadCounts) {
  const auto data = syntheticData(250, 31);
  std::vector<ml::GbrtConfig> grid;
  ml::GbrtConfig a;
  a.numEstimators = 15;
  grid.push_back(a);
  ml::GbrtConfig b;
  b.numEstimators = 15;
  b.maxDepth = 3;
  grid.push_back(b);

  const auto search = [&] {
    return ml::gridSearch<ml::GbrtConfig>(
        grid,
        [](const ml::GbrtConfig& c) { return std::make_unique<ml::Gbrt>(c); },
        data, 4, 42);
  };
  ml::GridSearchResult<ml::GbrtConfig> serial, parallel;
  {
    ScopedThreadLimit limit(1);
    serial = search();
  }
  {
    ScopedThreadLimit limit(8);
    parallel = search();
  }
  EXPECT_EQ(serial.bestConfig.numEstimators, parallel.bestConfig.numEstimators);
  EXPECT_EQ(serial.bestConfig.maxDepth, parallel.bestConfig.maxDepth);
  EXPECT_EQ(serial.bestCv.meanMae, parallel.bestCv.meanMae);
  EXPECT_EQ(serial.bestCv.meanMedae, parallel.bestCv.meanMedae);
  ASSERT_EQ(serial.all.size(), parallel.all.size());
  for (std::size_t c = 0; c < serial.all.size(); ++c) {
    ASSERT_EQ(serial.all[c].second.foldMae.size(),
              parallel.all[c].second.foldMae.size());
    for (std::size_t f = 0; f < serial.all[c].second.foldMae.size(); ++f) {
      EXPECT_EQ(serial.all[c].second.foldMae[f],
                parallel.all[c].second.foldMae[f]);
      EXPECT_EQ(serial.all[c].second.foldMedae[f],
                parallel.all[c].second.foldMedae[f]);
    }
  }
}

TEST(Determinism, CrossValidateMatchesAcrossThreadCounts) {
  const auto data = syntheticData(200, 41);
  const auto factory = [] { return std::make_unique<ml::LassoRegression>(); };
  ml::CvResult serial, parallel;
  {
    ScopedThreadLimit limit(1);
    serial = ml::crossValidate(factory, data, 5, 7);
  }
  {
    ScopedThreadLimit limit(8);
    parallel = ml::crossValidate(factory, data, 5, 7);
  }
  ASSERT_EQ(serial.foldMae.size(), parallel.foldMae.size());
  for (std::size_t f = 0; f < serial.foldMae.size(); ++f)
    EXPECT_EQ(serial.foldMae[f], parallel.foldMae[f]);
  EXPECT_EQ(serial.meanMae, parallel.meanMae);
}

// HCP_THREADS used to be strtol'd with no endptr check: "4abc" silently ran
// with 4 threads and "garbage" silently fell back to hardware concurrency.
// The strict parser rejects both with exit 2; unset/empty still means "use
// the default" (CI exports HCP_THREADS="" in its thread matrix).

TEST(ThreadLimitEnvDeathTest, GarbageExitsWithUsageError) {
  EXPECT_EXIT(
      {
        setenv("HCP_THREADS", "garbage", 1);
        support::detail::threadLimitFromEnv();
        _exit(0);  // unreachable: the parse must exit 2 first
      },
      ::testing::ExitedWithCode(2), "HCP_THREADS");
}

TEST(ThreadLimitEnvDeathTest, TrailingJunkExitsWithUsageError) {
  EXPECT_EXIT(
      {
        setenv("HCP_THREADS", "4abc", 1);
        support::detail::threadLimitFromEnv();
        _exit(0);
      },
      ::testing::ExitedWithCode(2), "HCP_THREADS");
}

TEST(ThreadLimitEnvDeathTest, ZeroExitsWithUsageError) {
  EXPECT_EXIT(
      {
        setenv("HCP_THREADS", "0", 1);
        support::detail::threadLimitFromEnv();
        _exit(0);
      },
      ::testing::ExitedWithCode(2), "HCP_THREADS");
}

TEST(ThreadLimitEnvDeathTest, EmptyAndUnsetMeanDefault) {
  // Run in the forked child too: setenv must not leak into other tests.
  EXPECT_EXIT(
      {
        setenv("HCP_THREADS", "", 1);
        const std::size_t fromEmpty = support::detail::threadLimitFromEnv();
        unsetenv("HCP_THREADS");
        const std::size_t fromUnset = support::detail::threadLimitFromEnv();
        setenv("HCP_THREADS", "3", 1);
        const std::size_t fromValue = support::detail::threadLimitFromEnv();
        _exit(fromEmpty >= 1 && fromUnset >= 1 && fromValue == 3 ? 0 : 7);
      },
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace hcp
