// The fault-injection framework test battery (tentpole of the fail-safe I/O
// PR):
//
//   1. Spec parsing and matching: always/count/probability entries, comma
//      lists, dot-prefix matching, first-match-wins, malformed specs throw.
//   2. Arming semantics: zero-cost disarmed default, exact fire counts,
//      deterministic probabilistic sequences, thread-safe countdown.
//   3. CheckedFileWriter: verified atomic writes — success leaves exactly
//      the destination file, every failure mode (injected open/write/rename
//      fault, abandoned writer, real unwritable path) raises hcp::IoError
//      naming the path and leaves neither a partial file nor a temp file,
//      and a failed overwrite preserves the previous file intact.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"
#include "test_util.hpp"

namespace hcp::support {
namespace {

namespace fp = failpoint;
namespace fs = std::filesystem;

/// Every test runs with a clean slate and leaves one behind.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear(); }
  void TearDown() override { fp::clear(); }
};

// --- 1. spec parsing and matching -------------------------------------------

TEST_F(FailpointTest, DisarmedByDefaultAndAfterClear) {
  EXPECT_FALSE(fp::armed());
  EXPECT_FALSE(fp::shouldFail("anything.at.all"));
  fp::configure("site");
  EXPECT_TRUE(fp::armed());
  fp::clear();
  EXPECT_FALSE(fp::armed());
  EXPECT_FALSE(fp::shouldFail("site"));
  EXPECT_TRUE(fp::sites().empty());
}

TEST_F(FailpointTest, BareSiteFiresEveryHit) {
  fp::configure("model.write");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fp::shouldFail("model.write"));
  EXPECT_EQ(fp::firedCount("model.write"), 5u);
  EXPECT_FALSE(fp::shouldFail("model.open"));
  EXPECT_FALSE(fp::shouldFail("trace.write"));
}

TEST_F(FailpointTest, CountedEntryFiresExactlyNTimes) {
  fp::configure("flowcache.store:3");
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (fp::shouldFail("flowcache.store")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fp::firedCount("flowcache.store"), 3u);
}

TEST_F(FailpointTest, CountZeroNeverFires) {
  fp::configure("site:0");
  EXPECT_TRUE(fp::armed());
  EXPECT_FALSE(fp::shouldFail("site"));
  EXPECT_EQ(fp::firedCount("site"), 0u);
}

TEST_F(FailpointTest, DotPrefixMatchingArmsWholeSubtree) {
  fp::configure("flowcache.store");
  EXPECT_TRUE(fp::shouldFail("flowcache.store"));
  EXPECT_TRUE(fp::shouldFail("flowcache.store.open"));
  EXPECT_TRUE(fp::shouldFail("flowcache.store.rename"));
  // A prefix must end at a dot boundary, and matching is not upward.
  EXPECT_FALSE(fp::shouldFail("flowcache.storefront"));
  EXPECT_FALSE(fp::shouldFail("flowcache"));
}

TEST_F(FailpointTest, CountedPrefixSharesOneBudgetAcrossTheSubtree) {
  // The acceptance scenario's shape: flowcache.store:1 fails exactly one
  // boundary inside the store, whichever is hit first.
  fp::configure("flowcache.store:1");
  EXPECT_TRUE(fp::shouldFail("flowcache.store.open"));
  EXPECT_FALSE(fp::shouldFail("flowcache.store.write"));
  EXPECT_FALSE(fp::shouldFail("flowcache.store.rename"));
}

TEST_F(FailpointTest, CommaListAndFirstMatchWins) {
  fp::configure("a.b:1,a,c:0");
  EXPECT_EQ(fp::sites(), (std::vector<std::string>{"a.b", "a", "c"}));
  EXPECT_TRUE(fp::shouldFail("a.b.x"));   // a.b's budget
  EXPECT_FALSE(fp::shouldFail("a.b.x"));  // a.b exhausted; it still matches
                                          // first, so the bare `a` never sees
                                          // queries under a.b
  EXPECT_TRUE(fp::shouldFail("a.other"));  // the bare `a` entry
  EXPECT_FALSE(fp::shouldFail("c"));
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  for (const char* bad :
       {":", ":1", "site:", "site:abc", "site:1.5", "site:-0.5", "site:1x",
        "si te:1", "a:b:c"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(fp::configure(bad), hcp::Error);
  }
  // A throwing configure leaves nothing half-armed from the bad spec.
  fp::clear();
  EXPECT_THROW(fp::configure("ok:1,broken:"), hcp::Error);
}

TEST_F(FailpointTest, MalformedNumericArgumentsThrow) {
  // The raw strtoull/strtod parse accepted all of these: hex floats, inf
  // and nan spellings, signs, whitespace, and trailing exponent junk.
  for (const char* bad :
       {"site:0x.8p1", "site:0x8", "site:inf", "site:nan", "site:0.5 ",
        "site: 0.5", "site:+0.5", "site:+1", "site:-1", "site:1.0e",
        "site:1.0e+", "site:0.5.5", "site:1e999"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(fp::configure(bad), hcp::Error);
  }
}

TEST_F(FailpointTest, ExponentProbabilitiesParse) {
  // '.'-less but exponent-bearing args are probabilities, not counts.
  fp::configure("always:1e0,never:0E2");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fp::shouldFail("always"));
    EXPECT_FALSE(fp::shouldFail("never"));
  }
}

TEST_F(FailpointTest, EmptyEntriesInListAreIgnored) {
  fp::configure(",a:1,,b,");
  EXPECT_EQ(fp::sites(), (std::vector<std::string>{"a", "b"}));
}

// --- 2. arming semantics -----------------------------------------------------

TEST_F(FailpointTest, ProbabilityEndpointsAreExact) {
  fp::configure("always:1.0,never:0.0");
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(fp::shouldFail("always"));
    EXPECT_FALSE(fp::shouldFail("never"));
  }
}

TEST_F(FailpointTest, ProbabilisticSequenceIsDeterministic) {
  auto run = [] {
    fp::configure("flaky:0.25");
    std::vector<bool> outcomes;
    for (int i = 0; i < 400; ++i) outcomes.push_back(fp::shouldFail("flaky"));
    return outcomes;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second) << "same spec must fire on the same hit sequence";
  const auto fired =
      static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 40);   // ~100 expected; bounds are loose but
  EXPECT_LT(fired, 200);  // deterministic, so this can never flake
}

TEST_F(FailpointTest, CountedBudgetIsExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  constexpr int kBudget = 137;
  fp::configure("contended:" + std::to_string(kBudget));
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i)
        if (fp::shouldFail("contended")) fired.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), kBudget);
  EXPECT_EQ(fp::firedCount("contended"), static_cast<std::uint64_t>(kBudget));
}

TEST_F(FailpointTest, FiresAreCountedInTelemetry) {
  telemetry::setEnabled(true);
  telemetry::reset();
  fp::configure("counted:2");
  (void)fp::shouldFail("counted");
  (void)fp::shouldFail("counted");
  (void)fp::shouldFail("counted");  // budget exhausted: hit, not a fire
  EXPECT_EQ(telemetry::snapshot().counter(
                telemetry::Counter::FailpointsFired),
            2u);
  telemetry::reset();
  telemetry::setEnabled(false);
}

TEST_F(FailpointTest, ScopedFailpointsRestoresThePreviousSpec) {
  fp::configure("outer:1");
  {
    fp::ScopedFailpoints inner("inner");
    EXPECT_EQ(fp::sites(), std::vector<std::string>{"inner"});
  }
  EXPECT_EQ(fp::sites(), std::vector<std::string>{"outer"});
  // Restoring re-parses the spec, so outer's budget is fresh again.
  EXPECT_TRUE(fp::shouldFail("outer"));
}

// --- 3. CheckedFileWriter ----------------------------------------------------

/// Fresh scratch directory; also the no-leftovers assertion all the failure
/// tests share.
class CheckedWriterTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    dir_ = std::string(::testing::TempDir()) + "checked_writer/";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    FailpointTest::TearDown();
  }

  std::string path(const char* name) const { return dir_ + name; }

  std::vector<std::string> filesInDir() const {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir_))
      names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
  }

  std::string dir_;
};

TEST_F(CheckedWriterTest, CommitWritesExactlyTheDestinationFile) {
  {
    txt::CheckedFileWriter writer(path("out.txt"), "test");
    writer.stream() << "hello " << 42 << "\n";
    writer.commit();
  }
  EXPECT_EQ(filesInDir(), std::vector<std::string>{"out.txt"});
  EXPECT_EQ(hcp::test::slurpFile(path("out.txt")), "hello 42\n");
}

TEST_F(CheckedWriterTest, AbandonedWriterLeavesNothing) {
  {
    txt::CheckedFileWriter writer(path("out.txt"), "test");
    writer.stream() << "half a document";
    // No commit: e.g. an exception unwound past the writer.
  }
  EXPECT_TRUE(filesInDir().empty());
}

TEST_F(CheckedWriterTest, InjectedOpenFailureThrowsAndLeavesNothing) {
  fp::configure("test.open");
  try {
    txt::CheckedFileWriter writer(path("out.txt"), "test");
    FAIL() << "open failpoint must fire";
  } catch (const hcp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path("out.txt")), std::string::npos)
        << e.what();
    EXPECT_EQ(e.path(), path("out.txt"));
  }
  EXPECT_TRUE(filesInDir().empty());
}

TEST_F(CheckedWriterTest, InjectedWriteFailureThrowsAndLeavesNothing) {
  fp::configure("test.write");
  txt::CheckedFileWriter writer(path("out.txt"), "test");
  writer.stream() << "doomed bytes";
  try {
    writer.commit();
    FAIL() << "write failpoint must fire";
  } catch (const hcp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path("out.txt")), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(filesInDir().empty());
}

TEST_F(CheckedWriterTest, InjectedRenameFailureThrowsAndLeavesNothing) {
  fp::configure("test.rename");
  txt::CheckedFileWriter writer(path("out.txt"), "test");
  writer.stream() << "doomed bytes";
  EXPECT_THROW(writer.commit(), hcp::IoError);
  EXPECT_TRUE(filesInDir().empty());
}

TEST_F(CheckedWriterTest, FailedOverwriteKeepsTheOldFileIntact) {
  {
    txt::CheckedFileWriter writer(path("out.txt"), "test");
    writer.stream() << "version 1";
    writer.commit();
  }
  fp::configure("test.write:1");
  {
    txt::CheckedFileWriter writer(path("out.txt"), "test");
    writer.stream() << "version 2, never lands";
    EXPECT_THROW(writer.commit(), hcp::IoError);
  }
  EXPECT_EQ(filesInDir(), std::vector<std::string>{"out.txt"});
  EXPECT_EQ(hcp::test::slurpFile(path("out.txt")), "version 1");
  // And with the budget exhausted, the next overwrite succeeds.
  {
    txt::CheckedFileWriter writer(path("out.txt"), "test");
    writer.stream() << "version 3";
    writer.commit();
  }
  EXPECT_EQ(hcp::test::slurpFile(path("out.txt")), "version 3");
}

TEST_F(CheckedWriterTest, RealOpenFailureReportsPathAndErrno) {
  const std::string missing = dir_ + "no/such/subdir/out.txt";
  try {
    txt::CheckedFileWriter writer(missing, "test");
    FAIL() << "open into a missing directory must fail";
  } catch (const hcp::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << e.what();
    EXPECT_EQ(e.path(), missing);
  }
}

TEST_F(CheckedWriterTest, SiteIsolationOnlyTheNamedWriterFails) {
  fp::configure("csv.write");
  {
    txt::CheckedFileWriter writer(path("ok.txt"), "model");
    writer.stream() << "unaffected";
    EXPECT_NO_THROW(writer.commit());
  }
  EXPECT_EQ(hcp::test::slurpFile(path("ok.txt")), "unaffected");
}

}  // namespace
}  // namespace hcp::support
