#include <gtest/gtest.h>

#include "apps/digit_spam.hpp"
#include "hls/design.hpp"
#include "rtl/generator.hpp"
#include "rtl/verilog.hpp"

namespace hcp::rtl {
namespace {

GeneratedRtl makeRtl() {
  auto app = apps::spamFilter({.numFeatures = 64, .unroll = 4,
                               .partition = 4});
  auto design = hls::synthesize(std::move(app.module), app.directives, {});
  return generateRtl(design);
}

TEST(Verilog, ModuleStructure) {
  const auto rtl = makeRtl();
  const std::string v = toVerilog(rtl.netlist);
  EXPECT_NE(v.find("module spam_filter (input wire clk);"),
            std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // One wire per net, one instance per cell.
  std::size_t wires = 0, instances = 0;
  for (std::size_t pos = 0; (pos = v.find("  wire ", pos)) != std::string::npos;
       pos += 7)
    ++wires;
  for (std::size_t pos = 0; (pos = v.find("hcp_", pos)) != std::string::npos;
       pos += 4)
    ++instances;
  EXPECT_EQ(wires, rtl.netlist.numNets());
  EXPECT_GE(instances, rtl.netlist.numCells());
}

TEST(Verilog, SanitizesIdentifiers) {
  const auto rtl = makeRtl();
  const std::string v = toVerilog(rtl.netlist);
  // Hierarchical '/' names must not survive into identifiers.
  const auto modEnd = v.find("endmodule");
  for (std::size_t pos = v.find("hcp_"); pos < modEnd;
       pos = v.find("hcp_", pos + 1)) {
    const auto line = v.substr(pos, v.find('\n', pos) - pos);
    const auto nameStart = line.find(") ");
    if (nameStart == std::string::npos) continue;
    const auto name = line.substr(nameStart + 2, line.find(" (", nameStart + 2) -
                                                     nameStart - 2);
    EXPECT_EQ(name.find('/'), std::string::npos) << name;
    EXPECT_EQ(name.find('.'), std::string::npos) << name;
  }
}

TEST(Verilog, ProvenanceCommentsOptIn) {
  const auto rtl = makeRtl();
  VerilogOptions with;
  VerilogOptions without;
  without.provenanceComments = false;
  EXPECT_NE(toVerilog(rtl.netlist, with).find("// IR op"),
            std::string::npos);
  EXPECT_EQ(toVerilog(rtl.netlist, without).find("// IR op"),
            std::string::npos);
}

TEST(Verilog, StubsEmittedOncePerKind) {
  const auto rtl = makeRtl();
  const std::string v = toVerilog(rtl.netlist);
  std::size_t stubCount = 0;
  for (std::size_t pos = 0;
       (pos = v.find("module hcp_reg", pos)) != std::string::npos; ++pos)
    ++stubCount;
  EXPECT_EQ(stubCount, 1u);
}

TEST(Verilog, DeterministicOutput) {
  const auto rtl = makeRtl();
  EXPECT_EQ(toVerilog(rtl.netlist), toVerilog(rtl.netlist));
}

}  // namespace
}  // namespace hcp::rtl
