// Randomized property tests: generate random-but-valid IR designs and push
// them through the entire pipeline (passes -> directives -> schedule -> bind
// -> RTL -> pack -> place -> route -> STA -> back-trace -> features),
// asserting structural invariants at every stage. Catches interactions no
// hand-written case covers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "features/extractor.hpp"
#include "features/grid_features.hpp"
#include "fpga/packer.hpp"
#include "fpga/placer.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hcp {
namespace {

/// Generates a random valid dataflow function: a few loops, arrays, a mix of
/// opcodes, everything wired to earlier values.
apps::AppDesign randomDesign(std::uint64_t seed) {
  Rng rng(seed);
  apps::AppDesign design;
  design.name = "fuzz_" + std::to_string(seed);
  design.module = std::make_unique<ir::Module>(design.name);

  auto fn = std::make_unique<ir::Function>("fuzz_top");
  ir::Builder b(*fn);
  const auto in = b.inPort("in", 16);
  const auto out = b.outPort("out", 32);
  const auto arr = b.array("mem", 16 + rng.uniformInt(48), 16);

  std::vector<ir::OpId> values;
  values.push_back(b.readPort(in));

  const int numLoops = 1 + static_cast<int>(rng.uniformInt(3));
  for (int l = 0; l < numLoops; ++l) {
    b.atLine(100 + l * 10);
    b.beginLoop("loop" + std::to_string(l), 4 + rng.uniformInt(60));
    const int bodyOps = 3 + static_cast<int>(rng.uniformInt(12));
    for (int i = 0; i < bodyOps; ++i) {
      const ir::OpId a = values[rng.uniformInt(values.size())];
      const ir::OpId c = values[rng.uniformInt(values.size())];
      ir::OpId v = ir::kInvalidOp;
      switch (rng.uniformInt(8)) {
        case 0: v = b.add(a, c); break;
        case 1: v = b.mul(b.trunc(a, std::min<std::uint16_t>(
                                         9, fn->op(a).bitwidth)),
                          b.constant(3, 4));
                break;
        case 2: v = b.xor_(a, c); break;
        case 3: v = b.select(b.icmpGt(a, c), a, c); break;
        case 4: v = b.min(a, c); break;
        case 5: {
          const auto idx = b.constant(
              static_cast<std::int64_t>(rng.uniformInt(16)), 8);
          v = b.load(arr, idx);
          break;
        }
        case 6: {
          const auto idx = b.constant(
              static_cast<std::int64_t>(rng.uniformInt(16)), 8);
          b.store(arr, idx, a);
          v = a;
          break;
        }
        default: v = b.sub(a, c); break;
      }
      if (fn->op(v).bitwidth > 32) v = b.trunc(v, 16);
      values.push_back(v);
    }
    b.endLoop();
  }
  b.writePort(out, b.zext(values.back(), 32));
  b.ret();
  design.module->addFunction(std::move(fn));
  design.module->setTop("fuzz_top");

  // Random directives on the generated loops.
  for (int l = 0; l < numLoops; ++l) {
    const std::string loop = "loop" + std::to_string(l);
    if (rng.bernoulli(0.5))
      design.directives.unroll("fuzz_top", loop,
                               2 + static_cast<std::uint32_t>(
                                       rng.uniformInt(6)));
    if (rng.bernoulli(0.4)) design.directives.pipeline("fuzz_top", loop, 1);
  }
  if (rng.bernoulli(0.5))
    design.directives.partition("fuzz_top", "mem",
                                1u << rng.uniformInt(4));
  return design;
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, FullFlowInvariantsHold) {
  const auto device = fpga::Device::xc7z020like();
  auto design = randomDesign(GetParam());
  ASSERT_TRUE(ir::verify(*design.module).empty());

  const auto flow = core::runFlow(std::move(design), device, {});

  // Schedule causality.
  const auto& fn = flow.design.topFunction();
  const auto& sched = flow.design.top().schedule;
  for (ir::OpId id = 0; id < fn.numOps(); ++id) {
    for (const auto& use : fn.op(id).operands) {
      const auto& p = sched.ops[use.producer];
      if (p.latency > 0)
        ASSERT_GT(sched.ops[id].startStep, p.endStep);
      else
        ASSERT_GE(sched.ops[id].startStep, p.startStep);
    }
  }

  // Netlist validity and placement legality.
  ASSERT_TRUE(flow.rtl.netlist.validate().empty());
  for (std::size_t c = 0; c < flow.impl.packing.clusters.size(); ++c) {
    const auto t = flow.impl.placement.tileOfCluster[c];
    ASSERT_LT(t.x, device.width());
    ASSERT_LT(t.y, device.height());
  }

  // Routing demand is non-negative and finite everywhere.
  const auto& map = flow.impl.routing.map;
  for (std::uint32_t y = 0; y < map.height(); ++y)
    for (std::uint32_t x = 0; x < map.width(); ++x) {
      ASSERT_GE(map.vDemand(x, y), -1e-9);
      ASSERT_TRUE(std::isfinite(map.hDemand(x, y)));
    }

  // Timing is finite and WNS consistent with the critical path.
  ASSERT_TRUE(std::isfinite(flow.impl.timing.criticalPathNs));
  ASSERT_GT(flow.impl.timing.maxFrequencyMhz, 0.0);

  // Every sample resolves and features are finite.
  features::FeatureExtractor extractor(flow.design, {});
  for (const auto& s : flow.traced.samples) {
    ASSERT_LT(s.op, fn.numOps());
    ASSERT_GE(s.vCongestion, 0.0);
    const auto x = extractor.extract(s.functionIndex, s.op);
    ASSERT_EQ(x.size(), features::kNumFeatures);
    for (double v : x) ASSERT_TRUE(std::isfinite(v));
  }

  // Grid features extract from the same placement: one full-size channel
  // per contract entry, everything finite and non-negative.
  const features::GridFeatures grid = features::extractGridFeatures(
      flow.impl.packing, flow.impl.placement, device);
  ASSERT_EQ(grid.width, device.width());
  ASSERT_EQ(grid.height, device.height());
  for (const std::vector<double>* channel : grid.channels()) {
    ASSERT_EQ(channel->size(), grid.numTiles());
    for (double v : *channel) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// --- degenerate grid-feature inputs ----------------------------------------
//
// fpga::Device enforces a minimum 8x8 fabric, so the degenerate geometries
// below go straight through features::GridGeometry — the extractor must
// handle them without crashing (the empty-map contract of grid_features.hpp).

features::GridGeometry tinyGeometry(std::uint32_t w, std::uint32_t h) {
  features::GridGeometry g;
  g.width = w;
  g.height = h;
  g.vTracks = 2.0;
  g.hTracks = 3.0;
  return g;
}

TEST(GridFeatureDegenerate, EmptyGeometryYieldsEmptyChannels) {
  const auto grid = features::extractGridFeatures(
      {}, {}, tinyGeometry(0, 0));
  EXPECT_EQ(grid.numTiles(), 0u);
  for (const std::vector<double>* channel : grid.channels())
    EXPECT_TRUE(channel->empty());
  // Zero-width-nonzero-height (and vice versa) are equally empty.
  EXPECT_EQ(features::extractGridFeatures({}, {}, tinyGeometry(0, 5))
                .numTiles(),
            0u);
  EXPECT_EQ(features::extractGridFeatures({}, {}, tinyGeometry(5, 0))
                .numTiles(),
            0u);
}

TEST(GridFeatureDegenerate, SingleTileGridWithOneNet) {
  fpga::Packing packing;
  packing.clusters.resize(2);
  fpga::ClusterNet net;
  net.driver = 0;
  net.sinks = {1};
  net.width = 4;
  packing.nets.push_back(net);
  fpga::Placement placement;
  placement.tileOfCluster = {{0, 0}, {0, 0}};

  const auto grid = features::extractGridFeatures(
      packing, placement, tinyGeometry(1, 1));
  ASSERT_EQ(grid.numTiles(), 1u);
  EXPECT_DOUBLE_EQ(grid.pinDensity[0], 8.0);  // driver + sink, width 4
  EXPECT_DOUBLE_EQ(grid.netCrossings[0], 1.0);
  EXPECT_DOUBLE_EQ(grid.rudyV[0], 4.0);  // whole net in a 1x1 box
  EXPECT_DOUBLE_EQ(grid.rudyH[0], 4.0);
  EXPECT_DOUBLE_EQ(grid.capV[0], 2.0);
  EXPECT_DOUBLE_EQ(grid.capH[0], 3.0);
  EXPECT_DOUBLE_EQ(grid.regionDist[0], 0.0);
}

TEST(GridFeatureDegenerate, ZeroNetPackingYieldsAllZeroDemand) {
  fpga::Packing packing;
  packing.clusters.resize(3);  // placed clusters, no nets between them
  fpga::Placement placement;
  placement.tileOfCluster = {{0, 0}, {1, 1}, {2, 0}};

  const auto grid = features::extractGridFeatures(
      packing, placement, tinyGeometry(3, 2));
  ASSERT_EQ(grid.numTiles(), 6u);
  for (const auto* channel :
       {&grid.pinDensity, &grid.netCrossings, &grid.rudyV, &grid.rudyH})
    for (double v : *channel) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : grid.capV) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(GridFeatureDegenerate, SingleTileRegionsMakeEveryTileASeam) {
  // regionSize 0 is treated as 1; both put every tile on a region boundary.
  for (const std::uint32_t regionSize : {0u, 1u}) {
    features::GridFeatureConfig config;
    config.regionSize = regionSize;
    const auto grid = features::extractGridFeatures(
        {}, {}, tinyGeometry(4, 3), config);
    for (double v : grid.regionDist) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(GridFeatureDegenerate, OutOfGridPlacementIsRejected) {
  fpga::Packing packing;
  packing.clusters.resize(1);
  fpga::ClusterNet net;
  net.driver = 0;
  packing.nets.push_back(net);
  fpga::Placement placement;
  placement.tileOfCluster = {{5, 5}};
  EXPECT_THROW(features::extractGridFeatures(packing, placement,
                                             tinyGeometry(2, 2)),
               hcp::Error);
}

}  // namespace
}  // namespace hcp
