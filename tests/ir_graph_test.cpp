#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/graph.hpp"

namespace hcp::ir {
namespace {

/// chain: in -> a(add) -> b(mul) -> out, plus c(add) reading a.
struct DiamondFixture {
  Function fn{"f"};
  OpId x, a, bOp, c;
  PortId in, out;

  DiamondFixture() {
    Builder b(fn);
    in = b.inPort("i", 16);
    out = b.outPort("o", 32);
    x = b.readPort(in);
    a = b.add(x, x);
    bOp = b.mul(a, a);
    c = b.add(a, x);
    b.writePort(out, bOp);
    b.ret();
  }
};

TEST(DependencyGraph, NodePerOpPlusPorts) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  EXPECT_EQ(g.numNodes(), f.fn.numOps() + f.fn.numPorts());
}

TEST(DependencyGraph, EdgeWeightsAreWireCounts) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  const NodeId na = g.nodeOf(f.a);
  // a is used twice by mul (2x16) and once by c (16); fanOut sums wires.
  EXPECT_DOUBLE_EQ(g.fanOut(na), 48.0);
  // a's fan-in: two uses of x's 16 bits (parallel edges accumulate).
  EXPECT_DOUBLE_EQ(g.fanIn(na), 32.0);
  // x->a is a single neighbour entry with accumulated weight.
  ASSERT_EQ(g.preds(na).size(), 1u);
  EXPECT_DOUBLE_EQ(g.preds(na)[0].wires, 32.0);
}

TEST(DependencyGraph, PortNodesLinked) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  const NodeId nx = g.nodeOf(f.x);
  // The readport op has the in-port node as predecessor.
  ASSERT_EQ(g.preds(nx).size(), 1u);
  EXPECT_EQ(g.node(g.preds(nx)[0].node).kind,
            DependencyGraph::NodeKind::Port);
}

TEST(DependencyGraph, TwoHopNeighbourhoods) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  const NodeId nb = g.nodeOf(f.bOp);
  const auto preds2 = g.twoHopPreds(nb);
  // One hop: a. Two hops: x. => {a, x}.
  EXPECT_EQ(preds2.size(), 2u);
}

TEST(DependencyGraph, MergePullsOpsTogether) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  const std::size_t aliveBefore = g.numAliveNodes();
  const std::vector<OpId> group{f.bOp, f.c};
  const NodeId merged = g.mergeOps(group);
  EXPECT_EQ(g.numAliveNodes(), aliveBefore - 1);
  EXPECT_EQ(g.nodeOf(f.bOp), merged);
  EXPECT_EQ(g.nodeOf(f.c), merged);
  EXPECT_EQ(g.node(merged).members.size(), 2u);
  // Merged node inherits external edges: preds = {a, x}, accumulated.
  double fanIn = g.fanIn(merged);
  EXPECT_DOUBLE_EQ(fanIn, 32.0 + 16.0 + 16.0);  // mul reads a twice, c reads a+x
}

TEST(DependencyGraph, MergeRedirectsNeighbours) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  const NodeId na = g.nodeOf(f.a);
  const std::size_t succsBefore = g.succs(na).size();  // mul, c
  EXPECT_EQ(succsBefore, 2u);
  g.mergeOps(std::vector<OpId>{f.bOp, f.c});
  // Both successors collapse into one merged neighbour.
  EXPECT_EQ(g.succs(na).size(), 1u);
  EXPECT_EQ(g.node(g.succs(na)[0].node).kind,
            DependencyGraph::NodeKind::Merged);
}

TEST(DependencyGraph, MergeOfSameNodeRejected) {
  DiamondFixture f;
  auto g = DependencyGraph::build(f.fn);
  g.mergeOps(std::vector<OpId>{f.bOp, f.c});
  // Merging ops already on one node throws.
  EXPECT_THROW(g.mergeOps(std::vector<OpId>{f.bOp, f.c}), hcp::Error);
}

TEST(DependencyGraph, IntraGroupEdgesVanish) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  const OpId m1 = b.mul(x, x);
  const OpId m2 = b.mul(m1, x);  // m1 -> m2 edge is inside the group
  b.writePort(out, m2);
  b.ret();
  auto g = DependencyGraph::build(fn);
  const NodeId merged = g.mergeOps(std::vector<OpId>{m1, m2});
  for (const auto& nbr : g.preds(merged))
    EXPECT_NE(nbr.node, merged) << "self-edge after merge";
}

}  // namespace
}  // namespace hcp::ir
