#include <gtest/gtest.h>

#include <cmath>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "support/rng.hpp"

namespace hcp::ml {
namespace {

/// y = 2*x0 - 3*x1 + 1 + noise over d features (rest irrelevant).
Dataset linearData(std::size_t n, std::size_t d, double noise,
                   std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(d);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(d);
    for (auto& v : x) v = rng.uniformReal(-1, 1);
    data.add(x, 2 * x[0] - 3 * x[1] + 1 + rng.normal(0, noise));
  }
  return data;
}

/// y = 4*x0*x1 + x2^2 + noise — needs a nonlinear model.
Dataset nonlinearData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(d);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(d);
    for (auto& v : x) v = rng.uniformReal(-2, 2);
    data.add(x, 4 * x[0] * x[1] + x[2] * x[2] + rng.normal(0, 0.2));
  }
  return data;
}

// --- Lasso -----------------------------------------------------------------

TEST(Lasso, RecoversLinearTarget) {
  const auto data = linearData(500, 6, 0.05, 1);
  LassoRegression model({.alpha = 0.01});
  model.fit(data);
  const auto pred = model.predictAll(data);
  EXPECT_LT(meanAbsoluteError(data.targets(), pred), 0.15);
}

TEST(Lasso, AlphaControlsSparsity) {
  const auto data = linearData(400, 20, 0.1, 2);
  LassoRegression loose({.alpha = 0.001});
  LassoRegression tight({.alpha = 0.8});
  loose.fit(data);
  tight.fit(data);
  EXPECT_LT(tight.nonZeroWeights(), loose.nonZeroWeights());
  // Strong regularization still keeps the two real predictors.
  EXPECT_GE(tight.nonZeroWeights(), 1u);
}

TEST(Lasso, ConvergesBeforeIterationCap) {
  const auto data = linearData(200, 4, 0.05, 3);
  LassoRegression model({.alpha = 0.05, .maxIterations = 400});
  model.fit(data);
  EXPECT_LT(model.iterationsRun(), 400);
}

TEST(Lasso, PredictBeforeFitThrows) {
  LassoRegression model;
  EXPECT_THROW(model.predict({1.0}), hcp::Error);
}

// --- MLP ---------------------------------------------------------------

TEST(Mlp, LearnsNonlinearTarget) {
  const auto data = nonlinearData(1500, 8, 4);
  MlpRegressor model({.hiddenLayers = {32, 16}, .maxEpochs = 80});
  model.fit(data);
  const auto pred = model.predictAll(data);
  // Std of the target is ~5; a linear model can't get below ~3 MAE.
  EXPECT_LT(meanAbsoluteError(data.targets(), pred), 1.5);
}

TEST(Mlp, BeatsLinearOnNonlinearData) {
  const auto data = nonlinearData(1500, 8, 5);
  const Split split = trainTestSplit(data.size(), 0.25, 9);
  const auto train = data.subset(split.train);
  const auto test = data.subset(split.test);
  LassoRegression linear({.alpha = 0.01});
  MlpRegressor mlp({.hiddenLayers = {32, 16}, .maxEpochs = 80});
  linear.fit(train);
  mlp.fit(train);
  const double maeLinear =
      meanAbsoluteError(test.targets(), linear.predictAll(test));
  const double maeMlp = meanAbsoluteError(test.targets(), mlp.predictAll(test));
  EXPECT_LT(maeMlp, maeLinear * 0.6);
}

TEST(Mlp, EarlyStoppingBoundsEpochs) {
  const auto data = linearData(300, 4, 0.01, 6);
  MlpRegressor model({.hiddenLayers = {16}, .maxEpochs = 200, .patience = 3});
  model.fit(data);
  EXPECT_LE(model.epochsRun(), 200u);
  EXPECT_TRUE(std::isfinite(model.bestValidationLoss()));
}

TEST(Mlp, DeterministicForSeed) {
  const auto data = linearData(200, 4, 0.1, 7);
  MlpRegressor a({.maxEpochs = 10, .seed = 5});
  MlpRegressor b({.maxEpochs = 10, .seed = 5});
  a.fit(data);
  b.fit(data);
  EXPECT_DOUBLE_EQ(a.predict(data.row(0)), b.predict(data.row(0)));
}

// --- trees -------------------------------------------------------------

TEST(Binner, QuantileBinsMonotone) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({static_cast<double>(i)});
  Binner binner;
  binner.fit(rows, 16);
  std::uint8_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto bin = binner.binOf(0, static_cast<double>(i));
    EXPECT_GE(bin, prev);
    prev = bin;
  }
  EXPECT_GT(prev, 10);  // uses most of the 16 bins on uniform data
}

TEST(Binner, ConstantFeatureSingleBin) {
  std::vector<std::vector<double>> rows(50, std::vector<double>{3.0});
  Binner binner;
  binner.fit(rows, 16);
  EXPECT_LE(binner.binOf(0, 3.0), 1);
}

TEST(RegressionTreeTest, FitsStepFunction) {
  Dataset data(1);
  for (int i = 0; i < 200; ++i) {
    const double x = i / 200.0;
    data.add({x}, x < 0.5 ? 1.0 : 5.0);
  }
  RegressionTree tree;
  tree.fit(data, {.maxDepth = 2, .minSamplesLeaf = 5});
  EXPECT_NEAR(tree.predict({0.2}), 1.0, 0.1);
  EXPECT_NEAR(tree.predict({0.9}), 5.0, 0.1);
  EXPECT_GE(tree.splitCounts()[0], 1u);
}

TEST(RegressionTreeTest, DepthLimited) {
  const auto data = nonlinearData(500, 4, 11);
  RegressionTree tree;
  tree.fit(data, {.maxDepth = 3, .minSamplesLeaf = 2});
  EXPECT_LE(tree.depth(), 4);  // root at depth 1
}

TEST(RegressionTreeTest, MinSamplesLeafRespected) {
  Dataset data(1);
  for (int i = 0; i < 20; ++i)
    data.add({static_cast<double>(i)}, static_cast<double>(i));
  RegressionTree tree;
  tree.fit(data, {.maxDepth = 10, .minSamplesLeaf = 8});
  // With 20 samples and >= 8 per leaf, at most 2 leaves -> <= 3 nodes.
  EXPECT_LE(tree.numNodes(), 3u);
}

// --- GBRT ------------------------------------------------------------------

TEST(GbrtTest, LearnsNonlinearTarget) {
  const auto data = nonlinearData(1500, 8, 12);
  Gbrt model({.numEstimators = 200, .learningRate = 0.1});
  model.fit(data);
  const auto pred = model.predictAll(data);
  EXPECT_LT(meanAbsoluteError(data.targets(), pred), 1.2);
}

TEST(GbrtTest, BeatsLinearOnNonlinearData) {
  const auto data = nonlinearData(1500, 8, 13);
  const Split split = trainTestSplit(data.size(), 0.25, 3);
  const auto train = data.subset(split.train);
  const auto test = data.subset(split.test);
  LassoRegression linear({.alpha = 0.01});
  Gbrt gbrt;
  linear.fit(train);
  gbrt.fit(train);
  EXPECT_LT(meanAbsoluteError(test.targets(), gbrt.predictAll(test)),
            meanAbsoluteError(test.targets(), linear.predictAll(test)) * 0.6);
}

TEST(GbrtTest, MoreTreesFitBetter) {
  const auto data = nonlinearData(800, 6, 14);
  Gbrt few({.numEstimators = 10});
  Gbrt many({.numEstimators = 200});
  few.fit(data);
  many.fit(data);
  EXPECT_LT(many.trainLoss(), few.trainLoss());
}

TEST(GbrtTest, FeatureImportanceFindsRealPredictors) {
  const auto data = nonlinearData(1200, 10, 15);  // only x0,x1,x2 matter
  Gbrt model({.numEstimators = 150, .featureFraction = 1.0});
  model.fit(data);
  const auto imp = model.featureImportance();
  ASSERT_EQ(imp.size(), 10u);
  double sum = 0.0;
  for (double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Split counts dilute over noise features at shallow depth; the real
  // predictors must still dominate, and gain-weighting more sharply so.
  const double real = imp[0] + imp[1] + imp[2];
  EXPECT_GT(real, 0.5);
  const auto gains = model.featureImportanceByGain();
  EXPECT_GT(gains[0] + gains[1] + gains[2], real);
  EXPECT_GT(gains[0] + gains[1] + gains[2], 0.75);
}

TEST(GbrtTest, DeterministicForSeed) {
  const auto data = nonlinearData(400, 5, 16);
  Gbrt a({.numEstimators = 30, .seed = 8});
  Gbrt b({.numEstimators = 30, .seed = 8});
  a.fit(data);
  b.fit(data);
  EXPECT_DOUBLE_EQ(a.predict(data.row(1)), b.predict(data.row(1)));
}

/// Property sweep: all three models produce finite predictions across
/// dataset shapes.
class ModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModelSweep, FinitePredictions) {
  const std::size_t d = GetParam();
  const auto data = linearData(120, d, 0.2, 17 + d);
  std::vector<std::unique_ptr<Regressor>> models;
  models.push_back(std::make_unique<LassoRegression>());
  models.push_back(std::make_unique<MlpRegressor>(
      MlpConfig{.hiddenLayers = {8}, .maxEpochs = 5}));
  models.push_back(std::make_unique<Gbrt>(GbrtConfig{.numEstimators = 10}));
  for (auto& model : models) {
    model->fit(data);
    for (std::size_t i = 0; i < 10; ++i)
      EXPECT_TRUE(std::isfinite(model->predict(data.row(i))))
          << model->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ModelSweep, ::testing::Values(2, 5, 17, 40));

}  // namespace
}  // namespace hcp::ml
