#include <gtest/gtest.h>

#include "hls/scheduler.hpp"
#include "ir/builder.hpp"

namespace hcp::hls {
namespace {

using ir::Builder;
using ir::Function;
using ir::Opcode;
using ir::OpId;

class SchedulerTest : public ::testing::Test {
 protected:
  CharLibrary lib = CharLibrary::xilinx7();
  ScheduleConstraints constraints;
};

TEST_F(SchedulerTest, DependenciesRespected) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 32);
  const OpId x = b.readPort(in);
  const OpId m = b.mul(x, x);      // multi-cycle DSP op
  const OpId s = b.add(m, m);      // must start after the mul ends
  b.writePort(out, s);
  b.ret();
  const Schedule sched = schedule(fn, lib, constraints);
  EXPECT_GT(sched.ops[s].startStep, sched.ops[m].endStep);
}

TEST_F(SchedulerTest, ChainingPacksShortOps) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  const OpId a = b.xor_(x, x);  // ~0.45ns each: several chain in one step
  const OpId c = b.xor_(a, x);
  b.writePort(out, c);
  b.ret();
  const Schedule sched = schedule(fn, lib, constraints);
  EXPECT_EQ(sched.ops[a].startStep, sched.ops[c].startStep);
  EXPECT_GT(sched.ops[c].startOffsetNs, sched.ops[a].startOffsetNs);
}

TEST_F(SchedulerTest, ChainBudgetSplitsLongChains) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 32);
  const auto out = b.outPort("o", 32);
  OpId v = b.readPort(in);
  // 32-bit adds are ~2ns; a chain of 8 cannot fit one 4.8ns chain budget.
  for (int i = 0; i < 8; ++i) v = b.add(v, v);
  b.writePort(out, v);
  b.ret();
  const Schedule sched = schedule(fn, lib, constraints);
  EXPECT_GT(sched.numSteps, 1u);
  EXPECT_LE(sched.estimatedClockNs,
            (constraints.clockPeriodNs - constraints.clockUncertaintyNs));
}

TEST_F(SchedulerTest, MemoryPortsSerializeAccesses) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 16);
  const auto arr = b.array("m", 64, 16);  // 1 bank -> 2 ports
  std::vector<OpId> loads;
  for (int i = 0; i < 6; ++i)
    loads.push_back(b.load(arr, b.constant(i, 8)));
  OpId acc = loads[0];
  for (int i = 1; i < 6; ++i) acc = b.add(acc, loads[i]);
  b.writePort(out, acc);
  b.ret();
  const Schedule sched = schedule(fn, lib, constraints);
  // 6 loads over 2 ports need at least 3 distinct start steps.
  std::set<std::uint32_t> starts;
  for (OpId l : loads) starts.insert(sched.ops[l].startStep);
  EXPECT_GE(starts.size(), 3u);
}

TEST_F(SchedulerTest, PartitioningRaisesMemoryParallelism) {
  auto build = [](std::uint32_t banks) {
    auto fn = std::make_unique<Function>("f");
    Builder b(*fn);
    const auto out = b.outPort("o", 16);
    const auto arr = b.array("m", 64, 16);
    fn->array(arr).banks = banks;
    std::vector<OpId> loads;
    for (int i = 0; i < 8; ++i)
      loads.push_back(b.load(arr, b.constant(i, 8)));
    OpId acc = loads[0];
    for (int i = 1; i < 8; ++i) acc = b.add(acc, loads[i]);
    b.writePort(out, acc);
    b.ret();
    return fn;
  };
  const auto lib = CharLibrary::xilinx7();
  const auto narrow = schedule(*build(1), lib, {});
  const auto wide = schedule(*build(8), lib, {});
  EXPECT_LT(wide.totalLatency, narrow.totalLatency);
}

TEST_F(SchedulerTest, CallConcurrencySerializes) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  std::vector<OpId> calls;
  for (int i = 0; i < 4; ++i) calls.push_back(b.call("leaf", {x}, 8));
  OpId acc = calls[0];
  for (int i = 1; i < 4; ++i) acc = b.add(acc, calls[i]);
  b.writePort(out, acc);
  b.ret();

  constraints.callInstanceLimit = 2;
  const Schedule sched =
      schedule(fn, lib, constraints, {{"leaf", 10}});
  std::set<std::uint32_t> starts;
  for (OpId c : calls) starts.insert(sched.ops[c].startStep);
  EXPECT_EQ(starts.size(), 2u);  // 4 calls / 2 instances
  // Call latency = callee + 2 handshake cycles.
  EXPECT_EQ(sched.ops[calls[0]].latency, 12u);
}

TEST_F(SchedulerTest, LoopLatencyMultipliesTripCount) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  const OpId x = b.readPort(in);
  b.beginLoop("L", 100);
  const OpId y = b.mul(x, x);  // multi-cycle body
  b.endLoop();
  b.writePort(out, b.trunc(y, 16));
  b.ret();
  const Schedule sched = schedule(fn, lib, constraints);
  // Body spans >= 3 steps (mul latency) -> latency >= 300.
  EXPECT_GE(sched.totalLatency, 300u);
}

TEST_F(SchedulerTest, PipelinedLoopUsesInitiationInterval) {
  auto build = [](bool pipelined) {
    auto fn = std::make_unique<Function>("f");
    Builder b(*fn);
    const auto in = b.inPort("i", 16);
    const auto out = b.outPort("o", 16);
    const OpId x = b.readPort(in);
    const ir::LoopId l = b.beginLoop("L", 1000);
    const OpId y = b.mul(x, x);
    b.endLoop();
    if (pipelined) {
      fn->loop(l).pipelined = true;
      fn->loop(l).initiationInterval = 1;
    }
    b.writePort(out, b.trunc(y, 16));
    b.ret();
    return fn;
  };
  const auto lib = CharLibrary::xilinx7();
  const auto seq = schedule(*build(false), lib, {});
  const auto pipe = schedule(*build(true), lib, {});
  EXPECT_LT(pipe.totalLatency, seq.totalLatency / 2);
  // Pipelined: depth + (trip-1)*II ~= trip.
  EXPECT_NEAR(static_cast<double>(pipe.totalLatency), 1000.0, 10.0);
}

TEST_F(SchedulerTest, UncertaintyMustLeaveBudget) {
  Function fn("f");
  Builder b(fn);
  b.ret();
  constraints.clockPeriodNs = 1.0;
  constraints.clockUncertaintyNs = 2.0;
  EXPECT_THROW(schedule(fn, lib, constraints), hcp::Error);
}

TEST_F(SchedulerTest, DeltaTcsMatchesSteps) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 32);
  const OpId x = b.readPort(in);
  const OpId m = b.mul(x, x);
  const OpId s = b.add(m, m);
  b.writePort(out, s);
  b.ret();
  const Schedule sched = schedule(fn, lib, constraints);
  EXPECT_EQ(sched.deltaTcs(m, s),
            static_cast<std::int64_t>(sched.ops[s].startStep) -
                static_cast<std::int64_t>(sched.ops[m].endStep));
  EXPECT_GE(sched.deltaTcs(m, s), 1);
}

/// Property: scheduling any of several widths/shapes never places a consumer
/// before its producer and never exceeds the chain budget per step.
class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, CausalityAndBudgetInvariants) {
  const int width = GetParam();
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", static_cast<std::uint16_t>(width));
  const auto out = b.outPort("o", 64);
  OpId v = b.readPort(in);
  for (int i = 0; i < 12; ++i) {
    v = (i % 3 == 0) ? b.mul(v, v) : b.add(v, v);
    if (fn.op(v).bitwidth > 32) v = b.trunc(v, 16);
  }
  b.writePort(out, b.zext(v, 64));
  b.ret();
  const auto lib = CharLibrary::xilinx7();
  const Schedule sched = schedule(fn, lib, {});
  for (ir::OpId id = 0; id < fn.numOps(); ++id) {
    for (const auto& use : fn.op(id).operands) {
      const auto& p = sched.ops[use.producer];
      const auto& c = sched.ops[id];
      if (p.latency > 0) {
        EXPECT_GT(c.startStep, p.endStep);
      } else {
        EXPECT_GE(c.startStep, p.startStep);
      }
    }
    EXPECT_GE(sched.ops[id].endStep, sched.ops[id].startStep);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SchedulerSweep,
                         ::testing::Values(4, 8, 12, 16, 24, 32));

}  // namespace
}  // namespace hcp::hls
