#include <gtest/gtest.h>

#include <set>

#include "apps/face_detection.hpp"
#include "hls/design.hpp"
#include "ir/builder.hpp"
#include "rtl/generator.hpp"

namespace hcp::rtl {
namespace {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::Opcode;
using ir::OpId;

/// Small design: two functions, one call, one array.
hls::SynthesizedDesign makeDesign(std::uint32_t banks = 1,
                                  bool constIdx = true) {
  auto mod = std::make_unique<Module>("m");
  {
    auto leaf = std::make_unique<Function>("leaf");
    Builder b(*leaf);
    const auto a = b.inPort("a", 16);
    const auto out = b.outPort("r", 16);
    const OpId x = b.readPort(a);
    b.writePort(out, b.trunc(b.mul(x, x), 16));
    b.ret();
    mod->addFunction(std::move(leaf));
  }
  {
    auto top = std::make_unique<Function>("top");
    Builder b(*top);
    const auto in = b.inPort("i", 16);
    const auto out = b.outPort("o", 16);
    const auto arr = b.array("mem", 32, 16);
    top->array(arr).banks = banks;
    const OpId x = b.readPort(in);
    b.store(arr, b.constant(1, 8), x);
    const OpId idx = constIdx ? b.constant(2, 8) : b.and_(x, b.constant(31, 8));
    const OpId v = b.load(arr, idx);
    const OpId r = b.call("leaf", {v}, 16);
    b.writePort(out, b.add(r, v));
    b.ret();
    mod->addFunction(std::move(top));
  }
  mod->setTop("top");
  return hls::synthesize(std::move(mod), {}, {});
}

TEST(Netlist, ValidateCatchesBadNets) {
  Netlist nl("t");
  const auto inst = nl.addInstance({"top", 0, 0});
  Cell a;
  a.name = "a";
  a.instance = inst;
  const CellId ca = nl.addCell(std::move(a));
  Net net;
  net.name = "n";
  net.width = 0;       // invalid width
  net.driver = ca;
  net.sinks = {ca};    // driver == sink
  nl.addNet(std::move(net));
  const auto issues = nl.validate();
  EXPECT_GE(issues.size(), 2u);
}

TEST(Generator, CleanNetlist) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  EXPECT_TRUE(rtl.netlist.validate().empty());
  EXPECT_GT(rtl.netlist.numCells(), 0u);
  EXPECT_GT(rtl.netlist.numNets(), 0u);
}

TEST(Generator, PadsForTopPorts) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  std::size_t pads = 0;
  for (const Cell& c : rtl.netlist.cells())
    if (c.type == CellType::Pad) ++pads;
  EXPECT_EQ(pads, 2u);
}

TEST(Generator, OneInstancePerCallUnit) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  // top + 1 leaf instance.
  EXPECT_EQ(rtl.netlist.numInstances(), 2u);
}

TEST(Generator, MemoryBanksEmitted) {
  const auto design = makeDesign(4);
  const auto rtl = generateRtl(design);
  std::size_t banks = 0;
  for (const Cell& c : rtl.netlist.cells())
    if (c.type == CellType::MemoryBank) ++banks;
  EXPECT_EQ(banks, 4u);
}

TEST(Generator, ConstIndexLoadHasNoAccessMux) {
  const auto design = makeDesign(4, /*constIdx=*/true);
  const auto rtl = generateRtl(design);
  for (const Cell& c : rtl.netlist.cells())
    EXPECT_EQ(c.name.find("_amux_"), std::string::npos) << c.name;
}

TEST(Generator, VariableIndexLoadGetsAccessMux) {
  const auto design = makeDesign(4, /*constIdx=*/false);
  const auto rtl = generateRtl(design);
  bool sawMux = false;
  for (const Cell& c : rtl.netlist.cells())
    if (c.name.find("_amux_") != std::string::npos) sawMux = true;
  EXPECT_TRUE(sawMux);
}

TEST(Generator, EveryInstanceHasFsm) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  std::set<InstanceId> withFsm;
  for (const Cell& c : rtl.netlist.cells())
    if (c.name.size() >= 4 &&
        c.name.compare(c.name.size() - 4, 4, "/fsm") == 0)
      withFsm.insert(c.instance);
  EXPECT_EQ(withFsm.size(), rtl.netlist.numInstances());
}

TEST(Generator, InterfaceRegistersAtCallBoundary) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  bool sawIfReg = false, sawIfOut = false;
  for (const Cell& c : rtl.netlist.cells()) {
    if (c.name.find("ifreg_a") != std::string::npos) sawIfReg = true;
    if (c.name.find("ifreg_out") != std::string::npos) sawIfOut = true;
  }
  EXPECT_TRUE(sawIfReg);
  EXPECT_TRUE(sawIfOut);
}

TEST(Generator, ProvenanceCoversFunctionalOps) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  std::set<std::uint64_t> keys;
  for (const auto& [key, cell] : rtl.provenance.opCells) {
    keys.insert(key);
    EXPECT_LT(cell, rtl.netlist.numCells());
  }
  EXPECT_FALSE(keys.empty());
}

TEST(Generator, TotalResourceMatchesCellSum) {
  const auto design = makeDesign();
  const auto rtl = generateRtl(design);
  hls::Resource sum;
  for (const Cell& c : rtl.netlist.cells()) sum += c.res;
  const auto total = rtl.netlist.totalResource();
  EXPECT_DOUBLE_EQ(total.lut, sum.lut);
  EXPECT_DOUBLE_EQ(total.ff, sum.ff);
}

TEST(Generator, SharedCallSitesGetInterfaceMux) {
  auto mod = std::make_unique<Module>("m");
  {
    auto leaf = std::make_unique<Function>("leaf");
    Builder b(*leaf);
    const auto a = b.inPort("a", 8);
    const auto out = b.outPort("r", 8);
    b.writePort(out, b.neg(b.readPort(a)));
    b.ret();
    mod->addFunction(std::move(leaf));
  }
  {
    auto top = std::make_unique<Function>("top");
    Builder b(*top);
    const auto in = b.inPort("i", 8);
    const auto out = b.outPort("o", 8);
    const OpId x = b.readPort(in);
    std::vector<OpId> calls;
    for (int i = 0; i < 4; ++i) calls.push_back(b.call("leaf", {x}, 8));
    OpId acc = calls[0];
    for (int i = 1; i < 4; ++i) acc = b.add(acc, calls[i]);
    b.writePort(out, acc);
    b.ret();
    mod->addFunction(std::move(top));
  }
  mod->setTop("top");
  hls::SynthesisOptions opts;
  opts.schedule.callInstanceLimit = 2;
  const auto design = hls::synthesize(std::move(mod), {}, opts);
  const auto rtl = generateRtl(design);
  // 4 call sites, limit 2 -> 2 leaf instances, each with an interface mux.
  EXPECT_EQ(rtl.netlist.numInstances(), 3u);
  std::size_t ifmux = 0;
  for (const Cell& c : rtl.netlist.cells())
    if (c.name.find("ifmux_") != std::string::npos) ++ifmux;
  EXPECT_EQ(ifmux, 2u);
  EXPECT_TRUE(rtl.netlist.validate().empty());
}

TEST(Generator, FaceDetectionVariantsGenerate) {
  for (bool inlined : {true, false}) {
    apps::FaceDetectionConfig cfg;
    cfg.inlineClassifiers = inlined;
    cfg.windowTrip = 64;
    cfg.fillTrip = 64;
    auto app = apps::faceDetection(cfg);
    const auto design =
        hls::synthesize(std::move(app.module), app.directives, {});
    const auto rtl = generateRtl(design);
    EXPECT_TRUE(rtl.netlist.validate().empty());
    if (inlined) {
      EXPECT_EQ(rtl.netlist.numInstances(), 1u);  // everything flat
    } else {
      EXPECT_GT(rtl.netlist.numInstances(), 10u);  // cascade/stage/weak tree
    }
  }
}

}  // namespace
}  // namespace hcp::rtl
