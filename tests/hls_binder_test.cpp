#include <gtest/gtest.h>

#include <set>

#include "hls/binder.hpp"
#include "hls/scheduler.hpp"
#include "ir/builder.hpp"

namespace hcp::hls {
namespace {

using ir::Builder;
using ir::Function;
using ir::Opcode;
using ir::OpId;

class BinderTest : public ::testing::Test {
 protected:
  CharLibrary lib = CharLibrary::xilinx7();
};

/// Sequential chain of muls: intervals never overlap, so they share.
TEST_F(BinderTest, SequentialMulsShare) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  OpId v = b.readPort(in);
  for (int i = 0; i < 4; ++i) v = b.trunc(b.mul(v, v), 16);
  b.writePort(out, v);
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  const Binding binding = bind(fn, sched, lib);
  EXPECT_GE(binding.sharedUnits, 1u);
  EXPECT_GE(binding.sharedOps, 4u);
  // Shared units need input muxes.
  EXPECT_GT(binding.totalMuxCount, 0u);
  EXPECT_GT(binding.totalMuxRes.lut, 0.0);
}

/// Parallel muls: overlapping intervals cannot share.
TEST_F(BinderTest, ParallelMulsDoNotShare) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 32);
  const OpId x = b.readPort(in);
  const OpId m1 = b.mul(x, x);
  const OpId m2 = b.mul(x, x);
  b.writePort(out, b.add(m1, m2));
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  const Binding binding = bind(fn, sched, lib);
  EXPECT_EQ(binding.fuOfOp[m1] == binding.fuOfOp[m2], false);
}

TEST_F(BinderTest, CheapOpsNeverShare) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  OpId v = b.readPort(in);
  for (int i = 0; i < 4; ++i) v = b.add(v, v);
  b.writePort(out, b.trunc(v, 16));
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  const Binding binding = bind(fn, sched, lib);
  EXPECT_EQ(binding.sharedUnits, 0u);
}

TEST_F(BinderTest, PipelinedLoopDisablesSharing) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  const OpId x = b.readPort(in);
  const ir::LoopId l = b.beginLoop("L", 16);
  OpId v = x;
  for (int i = 0; i < 3; ++i) v = b.trunc(b.mul(v, v), 16);
  b.endLoop();
  fn.loop(l).pipelined = true;
  b.writePort(out, v);
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  const Binding binding = bind(fn, sched, lib);
  EXPECT_EQ(binding.sharedUnits, 0u);
}

TEST_F(BinderTest, GroupSizeCapRespected) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  OpId v = b.readPort(in);
  for (int i = 0; i < 20; ++i) v = b.trunc(b.mul(v, v), 16);
  b.writePort(out, v);
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  BindConstraints c;
  c.maxGroupSize = 4;
  const Binding binding = bind(fn, sched, lib, c);
  for (const FuInstance& fu : binding.fus)
    EXPECT_LE(fu.ops.size(), 4u);
}

TEST_F(BinderTest, EveryFunctionalOpBound) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  const auto arr = b.array("m", 16, 16);
  const OpId x = b.readPort(in);
  const OpId s = b.add(x, b.constant(1, 8));
  b.store(arr, b.constant(0, 4), s);
  const OpId l = b.load(arr, b.constant(0, 4));
  b.writePort(out, l);
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  const Binding binding = bind(fn, sched, lib);
  for (OpId id = 0; id < fn.numOps(); ++id) {
    if (ir::isFunctionalUnit(fn.op(id).opcode)) {
      EXPECT_NE(binding.fuOfOp[id], ir::kInvalidIndex)
          << ir::opcodeName(fn.op(id).opcode);
    }
  }
}

TEST_F(BinderTest, SerializedCallsShareCalleeInstance) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  std::vector<OpId> calls;
  for (int i = 0; i < 4; ++i) calls.push_back(b.call("leaf", {x}, 8));
  OpId acc = calls[0];
  for (int i = 1; i < 4; ++i) acc = b.add(acc, calls[i]);
  b.writePort(out, acc);
  b.ret();

  ScheduleConstraints sc;
  sc.callInstanceLimit = 2;
  const Schedule sched = schedule(fn, lib, sc, {{"leaf", 6}});
  std::map<std::string, Resource> calleeRes{
      {"leaf", Resource{100, 50, 0, 0}}};
  const Binding binding = bind(fn, sched, lib, {}, calleeRes);

  std::set<std::uint32_t> callFus;
  for (OpId c : calls) callFus.insert(binding.fuOfOp[c]);
  EXPECT_EQ(callFus.size(), 2u);  // two shared instances
  for (std::uint32_t f : callFus) {
    EXPECT_EQ(binding.fus[f].callee, "leaf");
    EXPECT_DOUBLE_EQ(binding.fus[f].unitRes.lut, 100.0);
  }
}

TEST_F(BinderTest, CallsToDifferentCalleesNeverShare) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 8);
  const auto out = b.outPort("o", 8);
  const OpId x = b.readPort(in);
  const OpId c1 = b.call("a", {x}, 8);
  const OpId c2 = b.call("b", {c1}, 8);
  b.writePort(out, c2);
  b.ret();
  const Schedule sched = schedule(fn, lib, {}, {{"a", 4}, {"b", 4}});
  const Binding binding = bind(fn, sched, lib);
  EXPECT_NE(binding.fuOfOp[c1], binding.fuOfOp[c2]);
}

TEST_F(BinderTest, MergeIntoGraphCollapsesSharedOps) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  OpId v = b.readPort(in);
  std::vector<OpId> muls;
  for (int i = 0; i < 3; ++i) {
    v = b.mul(v, v);
    muls.push_back(v);
    v = b.trunc(v, 16);
  }
  b.writePort(out, v);
  b.ret();
  const Schedule sched = schedule(fn, lib, {});
  const Binding binding = bind(fn, sched, lib);
  auto graph = ir::DependencyGraph::build(fn);
  const std::size_t aliveBefore = graph.numAliveNodes();
  const std::size_t merges = mergeIntoGraph(graph, binding);
  if (binding.sharedUnits > 0) {
    EXPECT_GE(merges, 1u);
    EXPECT_LT(graph.numAliveNodes(), aliveBefore);
    EXPECT_EQ(graph.nodeOf(muls[0]), graph.nodeOf(muls[1]));
  }
}

}  // namespace
}  // namespace hcp::hls
