#include <gtest/gtest.h>

#include <cmath>

#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"
#include "core/resolver.hpp"

namespace hcp::core {
namespace {

/// Shared small flow + dataset (expensive, built once for the suite).
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    device_ = new fpga::Device(fpga::Device::xc7z020like());
    apps::FaceDetectionConfig cfg;
    cfg.windowTrip = 64;
    cfg.fillTrip = 64;
    cfg.stages = 6;
    flow_ = new FlowResult(runFlow(apps::faceDetection(cfg), *device_, {}));
    data_ = new LabeledDataset(buildDataset(*flow_, {}));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete flow_;
    delete device_;
  }

  static fpga::Device* device_;
  static FlowResult* flow_;
  static LabeledDataset* data_;
};

fpga::Device* CoreTest::device_ = nullptr;
FlowResult* CoreTest::flow_ = nullptr;
LabeledDataset* CoreTest::data_ = nullptr;

TEST_F(CoreTest, FlowProducesHeadlineMetrics) {
  EXPECT_GT(flow_->maxFrequencyMhz, 0.0);
  EXPECT_GT(flow_->latencyCycles, 0u);
  EXPECT_GT(flow_->maxVCongestion, 0.0);
  EXPECT_GT(flow_->maxHCongestion, 0.0);
  EXPECT_LT(flow_->wnsNs, flow_->design.constraints.clockPeriodNs);
}

TEST_F(CoreTest, DatasetAlignment) {
  EXPECT_EQ(data_->vertical.size(), data_->horizontal.size());
  EXPECT_EQ(data_->vertical.size(), data_->average.size());
  EXPECT_EQ(data_->vertical.size(), data_->samples.size());
  EXPECT_EQ(data_->vertical.numFeatures(), 302u);
  for (std::size_t i = 0; i < data_->samples.size(); ++i) {
    EXPECT_NEAR(data_->average.target(i),
                0.5 * (data_->vertical.target(i) +
                       data_->horizontal.target(i)),
                1e-9);
  }
}

TEST_F(CoreTest, FilterReducesSamples) {
  DatasetOptions noFilter;
  noFilter.applyMarginalFilter = false;
  const auto unfiltered = buildDataset(*flow_, noFilter);
  EXPECT_GE(unfiltered.vertical.size(), data_->vertical.size());
  EXPECT_EQ(data_->filterStats.total,
            unfiltered.vertical.size());
}

TEST_F(CoreTest, PredictorTrainsAndPredicts) {
  PredictorOptions opts;
  opts.kind = ModelKind::Gbrt;
  opts.gbrt.numEstimators = 40;
  CongestionPredictor predictor(opts);
  EXPECT_FALSE(predictor.trained());
  predictor.train(*data_);
  EXPECT_TRUE(predictor.trained());

  features::FeatureExtractor extractor(flow_->design, {});
  const auto& sample = data_->samples.front();
  const OpPrediction p =
      predictor.predictOp(extractor, sample.functionIndex, sample.op);
  EXPECT_TRUE(std::isfinite(p.vertical));
  EXPECT_TRUE(std::isfinite(p.horizontal));
  EXPECT_TRUE(std::isfinite(p.average));
  // Predictions live in a plausible congestion range.
  EXPECT_GT(p.average, 0.0);
  EXPECT_LT(p.average, 400.0);
}

TEST_F(CoreTest, PredictionsTrackLabelsOnTrainingData) {
  PredictorOptions opts;
  opts.gbrt.numEstimators = 80;
  CongestionPredictor predictor(opts);
  predictor.train(*data_);
  features::FeatureExtractor extractor(flow_->design, {});
  // Mean prediction over training samples is close to the label mean.
  double predSum = 0.0, labelSum = 0.0;
  for (const auto& s : data_->samples) {
    predSum += predictor.predictOp(extractor, s.functionIndex, s.op).average;
    labelSum += s.avgCongestion;
  }
  const double n = static_cast<double>(data_->samples.size());
  EXPECT_NEAR(predSum / n, labelSum / n, 10.0);
}

TEST_F(CoreTest, HotspotsRankedAndBounded) {
  CongestionPredictor predictor{PredictorOptions{}};
  predictor.train(*data_);
  const auto hotspots = predictor.findHotspots(flow_->design, {}, 5);
  ASSERT_LE(hotspots.size(), 5u);
  ASSERT_FALSE(hotspots.empty());
  for (std::size_t i = 1; i < hotspots.size(); ++i)
    EXPECT_GE(hotspots[i - 1].meanPredicted, hotspots[i].meanPredicted);
  for (const auto& h : hotspots) {
    EXPECT_FALSE(h.functionName.empty());
    EXPECT_GT(h.numOps, 0u);
  }
}

TEST_F(CoreTest, UntrainedPredictorThrows) {
  CongestionPredictor predictor{PredictorOptions{}};
  features::FeatureExtractor extractor(flow_->design, {});
  EXPECT_THROW(predictor.predictOp(extractor, 0, 0), hcp::Error);
  EXPECT_THROW(predictor.findHotspots(flow_->design, {}, 3), hcp::Error);
}

TEST_F(CoreTest, FeatureImportanceOnlyForGbrt) {
  CongestionPredictor gbrt{PredictorOptions{}};
  gbrt.train(*data_);
  EXPECT_EQ(gbrt.featureImportance().size(), 302u);

  PredictorOptions linOpts;
  linOpts.kind = ModelKind::Linear;
  CongestionPredictor linear(linOpts);
  linear.train(*data_);
  EXPECT_TRUE(linear.featureImportance().empty());
}

TEST_F(CoreTest, ResolverSuggestsRemovingInline) {
  CongestionPredictor predictor{PredictorOptions{}};
  predictor.train(*data_);
  const auto hotspots = predictor.findHotspots(flow_->design, {}, 10);
  const auto hints = adviseResolution(flow_->design, hotspots, {});
  ASSERT_FALSE(hints.empty());
  bool sawInlineHint = false;
  for (const auto& h : hints) {
    if (h.kind == ResolutionKind::RemoveInline) {
      sawInlineHint = true;
      // Target must be a real function of the design.
      EXPECT_NE(flow_->design.module->findFunction(h.target),
                ir::kInvalidIndex);
    }
    EXPECT_FALSE(h.message.empty());
  }
  EXPECT_TRUE(sawInlineHint);
}

TEST_F(CoreTest, ResolverHintsSortedBySeverity) {
  CongestionPredictor predictor{PredictorOptions{}};
  predictor.train(*data_);
  const auto hints = adviseResolution(
      flow_->design, predictor.findHotspots(flow_->design, {}, 10), {});
  for (std::size_t i = 1; i < hints.size(); ++i)
    EXPECT_GE(hints[i - 1].severity, hints[i].severity);
}

TEST(ModelKindNames, AllNamed) {
  EXPECT_EQ(modelKindName(ModelKind::Linear), "Linear");
  EXPECT_EQ(modelKindName(ModelKind::Ann), "ANN");
  EXPECT_EQ(modelKindName(ModelKind::Gbrt), "GBRT");
  EXPECT_EQ(resolutionKindName(ResolutionKind::ReplicateInputs),
            "replicate-inputs");
}

}  // namespace
}  // namespace hcp::core
