// The congestion-map model test battery (tentpole of the map-predictor PR):
//
//   1. Hotspot metrics: topFractionIndices / hotspotIoU corner cases —
//      deterministic tie-breaks, the at-least-one floor, empty inputs.
//   2. Serialization: MapPrediction and trained MapNet models round-trip
//      byte-identically through the text format; a checked-in golden map
//      (results/golden_map_spam_filter.txt) pins the routed ground truth of
//      a fixed-seed flow, byte for byte.
//   3. Determinism: the same samples + seed train byte-identical model
//      files — and produce byte-identical predicted maps and identical
//      MAE / hotspot-IoU numbers — at 1, 2 and 4 threads, for all three
//      topologies.
//   4. Corruption battery: truncated tensor blocks, NaN weights, grid-shape
//      mismatches, version/topology skew and trailing garbage are all
//      rejected with hcp::Error naming the file — never a crash, never a
//      silently misloaded model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/flow.hpp"
#include "core/map_predictor.hpp"
#include "features/grid_features.hpp"
#include "fpga/device.hpp"
#include "ml/mapnet.hpp"
#include "ml/metrics.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace hcp::ml {
namespace {

using hcp::test::TempFile;
using hcp::test::slurpFile;
using hcp::test::writeRaw;

// --- 1. hotspot metrics ----------------------------------------------------

TEST(HotspotMetrics, TopFractionPicksTheLargestValues) {
  const std::vector<double> values = {5.0, 1.0, 9.0, 7.0};
  EXPECT_EQ(topFractionIndices(values, 0.5),
            (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(topFractionIndices(values, 1.0),
            (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(HotspotMetrics, TiesBreakTowardTheLowerIndex) {
  const std::vector<double> flat = {3.0, 3.0, 3.0, 3.0};
  EXPECT_EQ(topFractionIndices(flat, 0.5), (std::vector<std::size_t>{0, 1}));
}

TEST(HotspotMetrics, NonEmptyInputAlwaysYieldsAtLeastOneHotspot) {
  const std::vector<double> values = {1.0, 4.0, 2.0};
  EXPECT_EQ(topFractionIndices(values, 0.01),
            (std::vector<std::size_t>{1}));
  EXPECT_TRUE(topFractionIndices({}, 0.5).empty());
}

TEST(HotspotMetrics, IoUExtremes) {
  const std::vector<double> a = {9.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(hotspotIoU(a, a, 0.25), 1.0);
  const std::vector<double> b = {1.0, 2.0, 3.0, 9.0};
  EXPECT_DOUBLE_EQ(hotspotIoU(a, b, 0.25), 0.0);  // disjoint top-1 sets
  EXPECT_DOUBLE_EQ(hotspotIoU({}, {}), 1.0);      // nothing to miss
}

TEST(HotspotMetrics, PartialOverlapScoresTheJaccardRatio) {
  // Top-half sets {0,1} vs {1,2}: intersection 1, union 3.
  const std::vector<double> actual = {9.0, 8.0, 1.0, 0.0};
  const std::vector<double> predicted = {1.0, 9.0, 8.0, 0.0};
  EXPECT_DOUBLE_EQ(hotspotIoU(actual, predicted, 0.5), 1.0 / 3.0);
}

// --- 2. MapPrediction serialization ---------------------------------------

MapPrediction smallMap() {
  MapPrediction map;
  map.width = 3;
  map.height = 2;
  map.vUtil = {10.5, 20.25, 110.0, 0.0, 55.5, 76.0};
  map.hUtil = {1.0, 2.0, 3.0, 4.0, 5.0, 130.0};
  return map;
}

std::string mapBytes(const MapPrediction& map) {
  std::ostringstream os;
  saveMapPrediction(map, os);
  return os.str();
}

TEST(MapPredictionIo, RoundTripIsByteIdentical) {
  const std::string once = mapBytes(smallMap());
  std::istringstream is(once);
  const MapPrediction back = loadMapPrediction(is);
  EXPECT_EQ(mapBytes(back), once);
  EXPECT_EQ(back.width, 3u);
  EXPECT_EQ(back.height, 2u);
  EXPECT_DOUBLE_EQ(back.maxVUtil(), 110.0);
  EXPECT_DOUBLE_EQ(back.maxHUtil(), 130.0);
  EXPECT_EQ(back.tilesOver(100.0), 2u);
}

TEST(MapPredictionIo, AsciiAndCsvRenderTheGrid) {
  const MapPrediction map = smallMap();
  // Rows print top-down: y=1 first.
  EXPECT_EQ(map.toAscii(true), ".+#\n..@\n");
  const std::string csv = map.toCsv();
  EXPECT_EQ(csv.substr(0, 18), "x,y,v_util,h_util\n");
  EXPECT_NE(csv.find("2,1,76,130"), std::string::npos);
}

TEST(MapPredictionIo, TrailingGarbageIsRejected) {
  std::istringstream is(mapBytes(smallMap()) + "leftover");
  EXPECT_THROW(loadMapPrediction(is), hcp::Error);
}

TEST(MapPredictionIo, FileErrorsNameThePath) {
  TempFile file("mapnet_bad_shape.map",
                "hcp-map 1\n3 2\nvutil 2 1 2\nhutil 2 3 4\n");
  try {
    loadMapPredictionFromFile(file.path());
    FAIL() << "grid-shape mismatch must not load";
  } catch (const hcp::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shape mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(file.path()), std::string::npos) << what;
  }
  EXPECT_THROW(loadMapPredictionFromFile("/nonexistent/m.map"), hcp::Error);
}

TEST(MapPredictionIo, NanTilesAreRejected) {
  TempFile file("mapnet_nan_tile.map",
                "hcp-map 1\n2 1\nvutil 2 nan 2\nhutil 2 3 4\n");
  EXPECT_THROW(loadMapPredictionFromFile(file.path()), hcp::Error);
}

// --- training fixtures -----------------------------------------------------

/// Small synthetic grids whose targets are a fixed smooth function of the
/// channels — enough structure for every topology to fit, cheap enough to
/// train in milliseconds.
std::vector<MapSample> syntheticMaps(std::size_t count, std::uint32_t width,
                                     std::uint32_t height,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MapSample> data;
  for (std::size_t s = 0; s < count; ++s) {
    MapSample sample;
    sample.grid.width = width;
    sample.grid.height = height;
    const std::size_t tiles = sample.grid.numTiles();
    sample.grid.channels.assign(features::GridFeatures::kNumChannels, {});
    for (auto& channel : sample.grid.channels) {
      channel.resize(tiles);
      for (double& v : channel) v = rng.uniformReal(0.0, 4.0);
    }
    sample.vTarget.resize(tiles);
    sample.hTarget.resize(tiles);
    for (std::size_t i = 0; i < tiles; ++i) {
      sample.vTarget[i] = 20.0 * sample.grid.channels[0][i] +
                          5.0 * sample.grid.channels[2][i];
      sample.hTarget[i] = 12.0 * sample.grid.channels[1][i] +
                          7.0 * sample.grid.channels[3][i];
    }
    data.push_back(std::move(sample));
  }
  return data;
}

MapNetConfig smallConfig(MapNetConfig::Topology topology) {
  MapNetConfig config;
  config.topology = topology;
  config.hiddenChannels = 4;
  config.rounds = 2;
  config.epochs = 4;
  config.seed = 7;
  return config;
}

std::string modelBytes(const MapNet& model) {
  std::ostringstream os;
  saveMapModel(model, os);
  return os.str();
}

class MapNetTopologies
    : public ::testing::TestWithParam<MapNetConfig::Topology> {};

// --- 3. determinism --------------------------------------------------------

TEST_P(MapNetTopologies, ModelAndPredictionAreThreadCountInvariant) {
  const auto data = syntheticMaps(3, 10, 8, 21);
  std::string refModel, refMap;
  double refMae = 0.0, refIoU = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    support::ScopedThreadLimit limit(threads);
    MapNet model(smallConfig(GetParam()));
    model.fit(data);
    const MapPrediction predicted = model.predict(data[0].grid);
    const double mae = meanAbsoluteError(data[0].vTarget, predicted.vUtil);
    const double iou = hotspotIoU(data[0].vTarget, predicted.vUtil);
    if (threads == 1) {
      refModel = modelBytes(model);
      refMap = mapBytes(predicted);
      refMae = mae;
      refIoU = iou;
      continue;
    }
    EXPECT_EQ(modelBytes(model), refModel) << threads << " threads";
    EXPECT_EQ(mapBytes(predicted), refMap) << threads << " threads";
    EXPECT_EQ(mae, refMae) << threads << " threads";
    EXPECT_EQ(iou, refIoU) << threads << " threads";
  }
}

TEST_P(MapNetTopologies, ModelRoundTripsByteIdentically) {
  MapNet model(smallConfig(GetParam()));
  model.fit(syntheticMaps(2, 8, 6, 5));
  const std::string once = modelBytes(model);
  std::istringstream is(once);
  const MapNet back = loadMapModel(is);
  EXPECT_EQ(modelBytes(back), once);
  EXPECT_EQ(back.config().topology, GetParam());
  EXPECT_EQ(back.epochsRun(), model.epochsRun());

  // The restored model predicts bit-identically.
  const auto probe = syntheticMaps(1, 8, 6, 99);
  EXPECT_EQ(mapBytes(back.predict(probe[0].grid)),
            mapBytes(model.predict(probe[0].grid)));
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, MapNetTopologies,
    ::testing::Values(MapNetConfig::Topology::kTileLinear,
                      MapNetConfig::Topology::kConv,
                      MapNetConfig::Topology::kLattice),
    [](const auto& info) { return std::string(topologyName(info.param)); });

// --- 4. model corruption battery ------------------------------------------

class MapModelCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    MapNet model(smallConfig(MapNetConfig::Topology::kConv));
    model.fit(syntheticMaps(2, 8, 6, 5));
    good_ = modelBytes(model);
  }

  /// Expects `bytes` to be rejected with an hcp::Error naming the file.
  void expectRejected(const std::string& tag, const std::string& bytes) {
    TempFile file(hcp::test::uniqueStem("mapmodel", tag) + ".hcp", bytes);
    try {
      loadMapModelFromFile(file.path());
      FAIL() << tag << ": corrupted model must not load";
    } catch (const hcp::Error& e) {
      EXPECT_NE(std::string(e.what()).find(file.path()), std::string::npos)
          << tag << ": error must name the file: " << e.what();
    }
  }

  std::string good_;
};

TEST_F(MapModelCorruption, GoodBytesLoad) {
  TempFile file("mapmodel_good.hcp", good_);
  const MapNet model = loadMapModelFromFile(file.path());
  EXPECT_EQ(model.config().topology, MapNetConfig::Topology::kConv);
}

TEST_F(MapModelCorruption, TruncatedTensorBlock) {
  // Cut mid-way through the first conv tensor's values.
  const auto w1 = good_.find("\nw1 ");
  ASSERT_NE(w1, std::string::npos);
  expectRejected("truncated", good_.substr(0, w1 + 20));
}

TEST_F(MapModelCorruption, NanWeight) {
  const auto w1 = good_.find("\nw1 ");
  ASSERT_NE(w1, std::string::npos);
  // Replace the first weight value ("w1 <count> <v0> ...") with nan.
  const auto countEnd = good_.find(' ', w1 + 4);
  const auto valueEnd = good_.find(' ', countEnd + 1);
  std::string bad = good_;
  bad.replace(countEnd + 1, valueEnd - countEnd - 1, "nan");
  expectRejected("nan", bad);
}

TEST_F(MapModelCorruption, WrongGridShape) {
  // Claim one more hidden channel than the tensors provide.
  const auto shape = good_.find("shape ");
  ASSERT_NE(shape, std::string::npos);
  std::string bad = good_;
  bad.replace(shape, 9, "shape 9");
  expectRejected("shape", bad);
}

TEST_F(MapModelCorruption, UnknownTopologyAndVersionSkew) {
  std::string bad = good_;
  bad.replace(0, bad.find('\n'), "hcp-mapmodel blob 1");
  expectRejected("topology", bad);
  bad = good_;
  bad.replace(0, bad.find('\n'), "hcp-mapmodel conv 9");
  expectRejected("version", bad);
  expectRejected("magic", "hcp-model conv 1\n");
}

TEST_F(MapModelCorruption, TrailingGarbage) {
  expectRejected("trailing", good_ + "leftover bytes\n");
}

TEST(MapNetContract, EmptyOrInconsistentTrainingSetsThrow) {
  MapNet model;
  EXPECT_THROW(model.fit({}), hcp::Error);
  auto data = syntheticMaps(2, 6, 5, 3);
  data[1].grid.channels.pop_back();  // inconsistent channel count
  EXPECT_THROW(model.fit(data), hcp::Error);
}

TEST(MapNetContract, PredictRejectsWrongChannelCount) {
  MapNet model(smallConfig(MapNetConfig::Topology::kTileLinear));
  EXPECT_THROW(model.predict(syntheticMaps(1, 6, 5, 3)[0].grid),
               hcp::Error);  // untrained
  model.fit(syntheticMaps(2, 6, 5, 3));
  auto probe = syntheticMaps(1, 6, 5, 9)[0].grid;
  probe.channels.pop_back();
  EXPECT_THROW(model.predict(probe), hcp::Error);
}

// --- golden-map regression -------------------------------------------------

// The routed ground truth of one fixed-seed flow, serialized through the
// map format, must match results/golden_map_spam_filter.txt byte for byte.
// Any drift means either the physical pipeline or the serializer changed
// behaviour. Regenerate deliberately with HCP_REGEN_GOLDEN=1.
TEST(GoldenMap, RoutedSpamFilterMapMatchesCheckedInGolden) {
  const auto device = fpga::Device::xc7z020like();
  const core::FlowResult flow =
      core::runFlow(apps::makeDesign("spam_filter"), device, {});
  const fpga::CongestionMap& routed = flow.impl.routing.map;

  MapPrediction truth;
  truth.width = routed.width();
  truth.height = routed.height();
  truth.vUtil.resize(truth.numTiles());
  truth.hUtil.resize(truth.numTiles());
  for (std::uint32_t y = 0; y < routed.height(); ++y)
    for (std::uint32_t x = 0; x < routed.width(); ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * routed.width() + x;
      truth.vUtil[i] = routed.vUtil(x, y);
      truth.hUtil[i] = routed.hUtil(x, y);
    }

  const std::string goldenPath =
      std::string(HCP_RESULTS_DIR) + "/golden_map_spam_filter.txt";
  if (std::getenv("HCP_REGEN_GOLDEN") != nullptr) {
    saveMapPredictionToFile(truth, goldenPath);
    GTEST_SKIP() << "golden map regenerated at " << goldenPath;
  }
  EXPECT_EQ(mapBytes(truth), slurpFile(goldenPath))
      << "routed map drifted from " << goldenPath
      << " (regenerate deliberately with HCP_REGEN_GOLDEN=1)";

  // The golden file itself must load as a well-formed map.
  const MapPrediction golden = loadMapPredictionFromFile(goldenPath);
  EXPECT_EQ(golden.width, device.width());
  EXPECT_EQ(golden.height, device.height());
}

}  // namespace
}  // namespace hcp::ml
