// End-to-end properties of the full C-to-FPGA flow: the qualitative
// relationships the paper's evaluation rests on (Tables I and VI) must hold
// across seeds and configurations.
#include <gtest/gtest.h>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"

namespace hcp::core {
namespace {

apps::FaceDetectionConfig smallFaceDet() {
  // Full default size: the congestion relationships of Tables I/VI need the
  // device meaningfully loaded (a half-empty fabric is never congested).
  return apps::FaceDetectionConfig{};
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    device_ = new fpga::Device(fpga::Device::xc7z020like());
    auto base = smallFaceDet();
    baseline_ = new FlowResult(
        runFlow(apps::faceDetection(base), *device_, {}));
    auto noDir = smallFaceDet();
    noDir.withDirectives = false;
    noDirectives_ = new FlowResult(
        runFlow(apps::faceDetection(noDir), *device_, {}));
    auto notInl = smallFaceDet();
    notInl.inlineClassifiers = false;
    notInline_ = new FlowResult(
        runFlow(apps::faceDetection(notInl), *device_, {}));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete noDirectives_;
    delete notInline_;
    delete device_;
  }

  static fpga::Device* device_;
  static FlowResult* baseline_;
  static FlowResult* noDirectives_;
  static FlowResult* notInline_;
};

fpga::Device* IntegrationTest::device_ = nullptr;
FlowResult* IntegrationTest::baseline_ = nullptr;
FlowResult* IntegrationTest::noDirectives_ = nullptr;
FlowResult* IntegrationTest::notInline_ = nullptr;

// --- Table I shape: directives trade latency for congestion ---------------

TEST_F(IntegrationTest, DirectivesReduceLatency) {
  EXPECT_LT(baseline_->latencyCycles, noDirectives_->latencyCycles / 3);
}

TEST_F(IntegrationTest, DirectivesIncreaseCongestion) {
  EXPECT_GT(baseline_->congestedTiles, 3 * noDirectives_->congestedTiles);
  EXPECT_GT(baseline_->impl.routing.map.meanHUtil(),
            noDirectives_->impl.routing.map.meanHUtil());
}

// --- Table VI shape: removing inlining trades cycles for congestion -------

TEST_F(IntegrationTest, NotInlineReducesCongestedTiles) {
  EXPECT_LT(notInline_->congestedTiles, baseline_->congestedTiles);
}

TEST_F(IntegrationTest, NotInlineCostsLatency) {
  EXPECT_GT(notInline_->latencyCycles, baseline_->latencyCycles);
}

// --- general flow invariants ------------------------------------------

TEST_F(IntegrationTest, DeterministicForSeed) {
  FlowConfig cfg;
  cfg.seed = 99;
  const auto a = runFlow(apps::faceDetection(smallFaceDet()), *device_, cfg);
  const auto b = runFlow(apps::faceDetection(smallFaceDet()), *device_, cfg);
  EXPECT_DOUBLE_EQ(a.maxVCongestion, b.maxVCongestion);
  EXPECT_DOUBLE_EQ(a.wnsNs, b.wnsNs);
  EXPECT_EQ(a.traced.samples.size(), b.traced.samples.size());
}

TEST_F(IntegrationTest, SeedChangesPlacementNotStructure) {
  FlowConfig cfg;
  cfg.seed = 123;
  const auto other =
      runFlow(apps::faceDetection(smallFaceDet()), *device_, cfg);
  // Same netlist, different physical outcome.
  EXPECT_EQ(other.rtl.netlist.numCells(), baseline_->rtl.netlist.numCells());
  EXPECT_EQ(other.latencyCycles, baseline_->latencyCycles);
  EXPECT_NE(other.maxVCongestion, baseline_->maxVCongestion);
}

TEST_F(IntegrationTest, CongestionMapsCoverDevice) {
  const auto& map = baseline_->impl.routing.map;
  EXPECT_EQ(map.width(), device_->width());
  EXPECT_EQ(map.height(), device_->height());
  // Centre hotter than the margin (Fig 5's spatial distribution).
  double centre = 0.0, margin = 0.0;
  std::size_t nc = 0, nm = 0;
  for (std::uint32_t y = 2; y < map.height() - 2; ++y) {
    for (std::uint32_t x = 2; x < map.width() - 2; ++x) {
      if (device_->centreRadius(x, y) < 0.3) {
        centre += map.vUtil(x, y);
        ++nc;
      } else if (device_->centreRadius(x, y) > 0.8) {
        margin += map.vUtil(x, y);
        ++nm;
      }
    }
  }
  EXPECT_GT(centre / nc, margin / nm);
}

TEST_F(IntegrationTest, DatasetFromMultipleFlowsMerges) {
  std::vector<FlowResult> flows;
  flows.push_back(runFlow(apps::digitSpamCombined(), *device_, {}));
  const auto single = buildDataset(flows[0], {});
  std::vector<FlowResult> both;
  both.push_back(std::move(flows[0]));
  both.push_back(runFlow(apps::faceDetection(smallFaceDet()), *device_, {}));
  const auto merged = buildDataset(both, {});
  EXPECT_GT(merged.vertical.size(), single.vertical.size());
}

TEST_F(IntegrationTest, HlsEstimateVsImplementedResources) {
  // HLS report and placed netlist agree on total LUTs within 2x (the report
  // includes callee bookkeeping that the flat netlist distributes).
  const double reported = baseline_->design.top().report.totalRes.lut;
  const double placed = baseline_->rtl.netlist.totalResource().lut;
  EXPECT_GT(placed, reported * 0.5);
  EXPECT_LT(placed, reported * 2.0);
}

}  // namespace
}  // namespace hcp::core
