// The flow-cache test battery (tentpole of the content-addressed cache PR):
//
//   1. Round-trip properties: writeFlowResult -> readFlowResult ->
//      writeFlowResult is byte-identical for three designs on two devices,
//      and a loaded result feeds the dataset builder and predictor
//      bit-identically to the original.
//   2. Key derivation: stable across rebuilds of the same inputs,
//      discriminating across seeds, directives, synthesis options and
//      devices.
//   3. Cache behavior: cold miss -> write, warm hit -> byte-identical
//      result with *zero* place/route work, input changes -> miss.
//   4. Corruption battery: truncation, bit flips, blanked files, version
//      skew, key mismatch, trailing garbage and unparsable payloads are all
//      detected (flowcache_corrupt), logged, and fall back to recompute —
//      never a crash, never stale data — and the recompute self-heals the
//      entry.
//   5. Failure matrix: injected store/load I/O failures (open, ENOSPC
//      mid-write, rename) degrade to recompute with the flowcache_*_error
//      counters bumped, never abort, never leave temp files, and stay
//      byte-identical to a cache-disabled run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/flow_serialize.hpp"
#include "core/predictor.hpp"
#include "support/failpoint.hpp"
#include "support/flowcache.hpp"
#include "support/telemetry.hpp"
#include "test_util.hpp"

namespace hcp::core {
namespace {

namespace fc = support::flowcache;
namespace telemetry = support::telemetry;
namespace fs = std::filesystem;

// --- fixtures ---------------------------------------------------------------

apps::AppDesign smallFace() {
  apps::FaceDetectionConfig cfg;
  cfg.stages = 4;
  cfg.windowTrip = 64;
  cfg.fillTrip = 64;
  return apps::faceDetection(cfg);
}

apps::AppDesign smallDigit() {
  apps::DigitRecognitionConfig cfg;
  cfg.trainingSize = 128;
  cfg.unroll = 8;
  return apps::digitRecognition(cfg);
}

apps::AppDesign smallSpam() {
  apps::SpamFilterConfig cfg;
  cfg.numFeatures = 256;
  cfg.unroll = 8;
  cfg.partition = 8;
  return apps::spamFilter(cfg);
}

using DesignFactory = apps::AppDesign (*)();
constexpr DesignFactory kDesigns[] = {&smallFace, &smallDigit, &smallSpam};

fpga::Device mainDevice() { return fpga::Device::xc7z020like(); }

/// Same grid as the xc7z020, different name and channel capacities — a
/// second device that every design still fits on but that must place/route
/// (and therefore cache) differently.
fpga::Device scarceDevice() {
  fpga::Device::Config cfg = fpga::Device::xc7z020like().config();
  cfg.name = "xc7z020like_scarce";
  cfg.vTracks = 40.0;
  cfg.hTracks = 30.0;
  return fpga::Device(cfg);
}

std::string serialize(const FlowResult& result) {
  std::ostringstream os;
  writeFlowResult(os, result);
  return os.str();
}

FlowResult deserialize(const std::string& text) {
  std::istringstream is(text);
  return readFlowResult(is);
}

/// One flow per (design, device) pair, computed once for the whole binary.
class FlowCacheRoundTrip : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flows_ = new std::vector<FlowResult>();
    for (const fpga::Device& device : {mainDevice(), scarceDevice()})
      for (DesignFactory make : kDesigns)
        flows_->push_back(runFlow(make(), device, {}));
  }
  static void TearDownTestSuite() {
    delete flows_;
    flows_ = nullptr;
  }

  static std::vector<FlowResult>* flows_;
};

std::vector<FlowResult>* FlowCacheRoundTrip::flows_ = nullptr;

using TempCacheDir = hcp::test::TempDir;
using hcp::test::slurpFile;
using hcp::test::writeRaw;

// --- 1. round-trip properties ----------------------------------------------

TEST_F(FlowCacheRoundTrip, SaveLoadSaveIsByteIdentical) {
  for (const FlowResult& flow : *flows_) {
    SCOPED_TRACE(flow.name);
    const std::string first = serialize(flow);
    const FlowResult loaded = deserialize(first);
    EXPECT_EQ(first, serialize(loaded));
  }
}

TEST_F(FlowCacheRoundTrip, LoadedResultMatchesOriginalFieldwise) {
  for (const FlowResult& flow : *flows_) {
    SCOPED_TRACE(flow.name);
    const FlowResult loaded = deserialize(serialize(flow));
    EXPECT_EQ(loaded.name, flow.name);
    EXPECT_EQ(loaded.wnsNs, flow.wnsNs);
    EXPECT_EQ(loaded.maxFrequencyMhz, flow.maxFrequencyMhz);
    EXPECT_EQ(loaded.latencyCycles, flow.latencyCycles);
    EXPECT_EQ(loaded.maxVCongestion, flow.maxVCongestion);
    EXPECT_EQ(loaded.maxHCongestion, flow.maxHCongestion);
    EXPECT_EQ(loaded.congestedTiles, flow.congestedTiles);
    EXPECT_EQ(loaded.rtl.netlist.numCells(), flow.rtl.netlist.numCells());
    EXPECT_EQ(loaded.rtl.netlist.numNets(), flow.rtl.netlist.numNets());
    EXPECT_TRUE(loaded.rtl.netlist.validate().empty());
    EXPECT_EQ(loaded.traced.samples.size(), flow.traced.samples.size());
    EXPECT_EQ(loaded.impl.placement.tileOfCluster.size(),
              flow.impl.placement.tileOfCluster.size());
  }
}

TEST_F(FlowCacheRoundTrip, LoadedResultBuildsIdenticalDataset) {
  for (const FlowResult& flow : *flows_) {
    SCOPED_TRACE(flow.name);
    const FlowResult loaded = deserialize(serialize(flow));
    const LabeledDataset a = buildDataset(flow, {});
    const LabeledDataset b = buildDataset(loaded, {});
    ASSERT_EQ(a.vertical.size(), b.vertical.size());
    EXPECT_EQ(a.vertical.rows(), b.vertical.rows());
    EXPECT_EQ(a.vertical.targets(), b.vertical.targets());
    EXPECT_EQ(a.horizontal.targets(), b.horizontal.targets());
    EXPECT_EQ(a.average.targets(), b.average.targets());
    EXPECT_EQ(a.filterStats.marginal, b.filterStats.marginal);
  }
}

TEST_F(FlowCacheRoundTrip, LoadedDesignPredictsIdentically) {
  const FlowResult& flow = flows_->front();
  const FlowResult loaded = deserialize(serialize(flow));

  PredictorOptions opts;
  opts.gbrt.numEstimators = 20;
  CongestionPredictor predictor(opts);
  const LabeledDataset data = buildDataset(flow, {});
  predictor.train(data);

  features::FeatureExtractor original(flow.design, {});
  features::FeatureExtractor restored(loaded.design, {});
  for (std::size_t i = 0; i < std::min<std::size_t>(25, data.samples.size());
       ++i) {
    const auto& s = data.samples[i];
    const auto a = predictor.predictOp(original, s.functionIndex, s.op);
    const auto b = predictor.predictOp(restored, s.functionIndex, s.op);
    EXPECT_EQ(a.vertical, b.vertical);
    EXPECT_EQ(a.horizontal, b.horizontal);
    EXPECT_EQ(a.average, b.average);
  }
}

// --- 2. key derivation ------------------------------------------------------

TEST(FlowCacheKey, StableAcrossRebuildsOfTheSameInputs) {
  const fpga::Device device = mainDevice();
  const FlowConfig config;
  const std::string a = flowCacheKey(smallDigit(), device, config);
  const std::string b = flowCacheKey(smallDigit(), device, config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
}

TEST(FlowCacheKey, DiscriminatesEveryInput) {
  const fpga::Device device = mainDevice();
  const FlowConfig base;
  const std::string key = flowCacheKey(smallDigit(), device, base);

  FlowConfig seeded = base;
  seeded.seed = base.seed + 1;
  EXPECT_NE(key, flowCacheKey(smallDigit(), device, seeded));

  FlowConfig options = base;
  options.synthesis.runFrontendPasses = false;
  EXPECT_NE(key, flowCacheKey(smallDigit(), device, options));

  FlowConfig clocked = base;
  clocked.synthesis.schedule.clockPeriodNs = 8.0;
  EXPECT_NE(key, flowCacheKey(smallDigit(), device, clocked));

  FlowConfig par = base;
  par.par.router.maxIterations += 1;
  EXPECT_NE(key, flowCacheKey(smallDigit(), device, par));

  apps::DigitRecognitionConfig noDir;
  noDir.trainingSize = 128;
  noDir.unroll = 8;
  noDir.withDirectives = false;
  EXPECT_NE(key,
            flowCacheKey(apps::digitRecognition(noDir), device, base));

  EXPECT_NE(key, flowCacheKey(smallDigit(), scarceDevice(), base));
  EXPECT_NE(key, flowCacheKey(smallSpam(), device, base));
}

// --- 3. cache behavior ------------------------------------------------------

/// Arms telemetry and the global cache for one test body.
class CacheBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::setEnabled(true);
    telemetry::reset();
  }
  void TearDown() override {
    telemetry::reset();
    telemetry::setEnabled(false);
  }

  static std::uint64_t counter(telemetry::Counter c) {
    return telemetry::snapshot().counter(c);
  }
};

TEST_F(CacheBehaviorTest, ColdMissesWarmHitsByteIdentically) {
  TempCacheDir scratch("flowcache_behavior/");
  fc::ScopedCacheDir armed(scratch.dir());

  const FlowResult cold = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);

  telemetry::reset();
  const FlowResult warm = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 0u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 0u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheCorrupt), 0u);
  // The entire point: a hit does zero physical-implementation work...
  EXPECT_EQ(counter(telemetry::Counter::PlacerMovesProposed), 0u);
  EXPECT_EQ(counter(telemetry::Counter::RouterIterations), 0u);
  EXPECT_EQ(counter(telemetry::Counter::HlsFunctionsSynthesized), 0u);
  // ...and returns the recomputed result byte for byte.
  EXPECT_EQ(serialize(cold), serialize(warm));
}

TEST_F(CacheBehaviorTest, InputChangesMissInsteadOfServingStaleData) {
  TempCacheDir scratch("flowcache_invalidate/");
  fc::ScopedCacheDir armed(scratch.dir());

  FlowConfig config;
  (void)runFlow(smallDigit(), mainDevice(), config);

  telemetry::reset();
  config.seed = 43;
  (void)runFlow(smallDigit(), mainDevice(), config);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);

  telemetry::reset();
  apps::DigitRecognitionConfig retuned;
  retuned.trainingSize = 128;
  retuned.unroll = 4;  // different unroll directive
  (void)runFlow(apps::digitRecognition(retuned), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);
}

TEST_F(CacheBehaviorTest, RunFlowsServesEveryDesignFromTheCache) {
  TempCacheDir scratch("flowcache_runflows/");
  fc::ScopedCacheDir armed(scratch.dir());

  auto makeSuite = [] {
    std::vector<apps::AppDesign> designs;
    designs.push_back(smallFace());
    designs.push_back(smallDigit());
    designs.push_back(smallSpam());
    return designs;
  };
  auto designs = makeSuite();
  const auto cold = runFlows(designs, mainDevice(), {});

  telemetry::reset();
  auto again = makeSuite();
  const auto warm = runFlows(again, mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 3u);
  EXPECT_EQ(counter(telemetry::Counter::PlacerMovesProposed), 0u);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(serialize(cold[i]), serialize(warm[i]));
}

TEST_F(CacheBehaviorTest, GoldenDigitSpamColdWarmAndInvalidation) {
  // The issue's golden scenario, on the paper's combined design proper:
  // same flow twice into a temp cache — the second run is a 100% hit and
  // its run-report observables (counters, span paths and hit counts,
  // histogram observation counts — everything but wall time) match a
  // further warm run exactly; changing one directive knob or the seed
  // misses instead of serving the old entry.
  TempCacheDir scratch("flowcache_golden/");
  fc::ScopedCacheDir armed(scratch.dir());

  const FlowResult cold = runFlow(apps::digitSpamCombined(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);

  auto warmSnapshot = [&] {
    telemetry::reset();
    const FlowResult warm =
        runFlow(apps::digitSpamCombined(), mainDevice(), {});
    EXPECT_EQ(serialize(warm), serialize(cold));
    return telemetry::snapshot();
  };
  const telemetry::Snapshot warm1 = warmSnapshot();
  const telemetry::Snapshot warm2 = warmSnapshot();

  EXPECT_EQ(warm1.counter(telemetry::Counter::FlowCacheHit), 1u);
  EXPECT_EQ(warm1.counter(telemetry::Counter::FlowCacheMiss), 0u);
  EXPECT_EQ(warm1.counter(telemetry::Counter::PlacerMovesProposed), 0u);
  // Bit-identical report observables across warm runs.
  EXPECT_EQ(warm1.counters, warm2.counters);
  ASSERT_EQ(warm1.spans.size(), warm2.spans.size());
  for (std::size_t i = 0; i < warm1.spans.size(); ++i) {
    EXPECT_EQ(warm1.spans[i].path, warm2.spans[i].path);
    EXPECT_EQ(warm1.spans[i].count, warm2.spans[i].count);
    EXPECT_NE(warm1.spans[i].path, "flow/place");
    EXPECT_NE(warm1.spans[i].path, "flow/route");
  }
  for (std::size_t h = 0; h < telemetry::kNumHistograms; ++h)
    EXPECT_EQ(warm1.histograms[h].count, warm2.histograms[h].count);

  // One directive knob changed -> miss.
  telemetry::reset();
  apps::DigitRecognitionConfig digit;
  digit.unroll = 16;
  (void)runFlow(apps::digitSpamCombined(digit, {}), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);

  // Seed changed -> miss.
  telemetry::reset();
  FlowConfig reseeded;
  reseeded.seed = 43;
  (void)runFlow(apps::digitSpamCombined(), mainDevice(), reseeded);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);
}

// --- 4. corruption battery --------------------------------------------------

/// Every mutation of a stored entry must load as nullopt and count one
/// flowcache_corrupt — never throw, never return bytes.
class CorruptionBattery : public CacheBehaviorTest {
 protected:
  void expectCorrupt(const fc::FlowCache& cache, const std::string& key,
                     const char* what) {
    SCOPED_TRACE(what);
    const std::uint64_t before =
        counter(telemetry::Counter::FlowCacheCorrupt);
    std::optional<std::string> out;
    EXPECT_NO_THROW(out = cache.load(key));
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(counter(telemetry::Counter::FlowCacheCorrupt), before + 1);
  }
};

TEST_F(CorruptionBattery, EveryMalformedEnvelopeShapeIsDetected) {
  TempCacheDir scratch("flowcache_corrupt_env/");
  const fc::FlowCache cache(scratch.dir());
  const std::string key = "00deadbeef00cafe";
  const std::string payload = "pretend flow result payload\nwith lines\n";
  cache.store(key, payload);
  const std::string path = cache.entryPath(key);
  const std::string good = slurpFile(path);
  ASSERT_FALSE(good.empty());

  // Sanity: the untouched entry loads.
  ASSERT_EQ(cache.load(key), payload);

  writeRaw(path, "");
  expectCorrupt(cache, key, "blanked file");

  writeRaw(path, good.substr(0, good.size() / 2));
  expectCorrupt(cache, key, "truncated payload");

  writeRaw(path, good.substr(0, good.find('\n') / 2));
  expectCorrupt(cache, key, "truncated header, no newline");

  std::string flipped = good;
  flipped[flipped.size() - 3] ^= 0x20;  // bit-flip inside the payload
  writeRaw(path, flipped);
  expectCorrupt(cache, key, "payload bit flip");

  writeRaw(path, good + "extra");
  expectCorrupt(cache, key, "trailing garbage after payload");

  std::string skewed = good;
  const std::string versionTag = "hcp-flowcache " +
                                 std::to_string(fc::kSchemaVersion) + ' ';
  ASSERT_EQ(skewed.rfind(versionTag, 0), 0u);
  skewed.replace(0, versionTag.size(), "hcp-flowcache 999 ");
  writeRaw(path, skewed);
  expectCorrupt(cache, key, "schema version bump");

  writeRaw(path, "wrong-magic" + good.substr(good.find(' ')));
  expectCorrupt(cache, key, "wrong magic");

  std::string crowded = good;
  crowded.insert(crowded.find('\n'), " surplus-token");
  writeRaw(path, crowded);
  expectCorrupt(cache, key, "trailing tokens in header");

  // An entry copied to a different key's path: stored digest disagrees with
  // the requested key, so it must not be served.
  const std::string otherKey = "1111222233334444";
  cache.store(key, payload);  // self-heal the original first
  fs::copy_file(cache.entryPath(key), cache.entryPath(otherKey),
                fs::copy_options::overwrite_existing);
  expectCorrupt(cache, otherKey, "key mismatch");

  // After all that abuse, a fresh store must still serve.
  cache.store(key, payload);
  EXPECT_EQ(cache.load(key), payload);
}

TEST_F(CorruptionBattery, CorruptFlowEntryFallsBackToRecomputeAndSelfHeals) {
  TempCacheDir scratch("flowcache_corrupt_flow/");
  fc::ScopedCacheDir armed(scratch.dir());

  const FlowResult cold = runFlow(smallSpam(), mainDevice(), {});
  const std::string key = flowCacheKey(smallSpam(), mainDevice(), {});
  const std::string path = fc::global()->entryPath(key);
  const std::string good = slurpFile(path);
  ASSERT_FALSE(good.empty());

  // Truncate the real entry: the warm run must detect it, recompute the
  // identical result, and rewrite the entry.
  writeRaw(path, good.substr(0, good.size() - 100));
  telemetry::reset();
  const FlowResult healed = runFlow(smallSpam(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheCorrupt), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 1u);
  EXPECT_EQ(serialize(cold), serialize(healed));
  EXPECT_EQ(slurpFile(path), good);

  // And the healed entry now hits.
  telemetry::reset();
  (void)runFlow(smallSpam(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 1u);
}

TEST_F(CorruptionBattery, ValidEnvelopeWithUnparsablePayloadRecomputes) {
  TempCacheDir scratch("flowcache_corrupt_payload/");
  fc::ScopedCacheDir armed(scratch.dir());

  // A payload that passes every envelope check but is not a FlowResult:
  // the parse failure must count as corrupt and fall back to recompute.
  const std::string key = flowCacheKey(smallSpam(), mainDevice(), {});
  fc::global()->store(key, "hcp-flowresult 1 name 4 oops truncated nonsense");

  telemetry::reset();
  FlowResult result;
  EXPECT_NO_THROW(result = runFlow(smallSpam(), mainDevice(), {}));
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheCorrupt), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);
  EXPECT_GT(result.rtl.netlist.numCells(), 0u);

  // The recompute overwrote the poisoned entry; now it hits.
  telemetry::reset();
  (void)runFlow(smallSpam(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 1u);
}

TEST_F(CorruptionBattery, FlowResultReaderRejectsTrailingGarbage) {
  // readFlowResult is the "one document per entry" contract: concatenated
  // or padded payloads must be rejected, not half-consumed.
  const FlowResult flow = runFlow(smallSpam(), mainDevice(), {});
  const std::string text = serialize(flow);
  EXPECT_THROW(deserialize(text + "surplus"), hcp::Error);
  EXPECT_THROW(deserialize(text + text), hcp::Error);
  std::istringstream truncated(text.substr(0, text.size() / 3));
  EXPECT_THROW(readFlowResult(truncated), hcp::Error);
}

// --- 5. failure matrix: store/load I/O failures degrade to recompute --------
//
// The contract under test (DESIGN.md §14): the cache is an accelerator,
// never a correctness dependency. No cache I/O failure may abort a flow
// that would succeed without the cache; failures are counted
// (flowcache_store_error / flowcache_load_error), the orphaned temp file is
// always removed, and results stay byte-identical to a cache-disabled run.

namespace fp = support::failpoint;

/// Files in `dir` whose name contains ".tmp." — must always be empty after
/// a store, successful or failed.
std::vector<std::string> tmpFilesIn(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) names.push_back(name);
  }
  return names;
}

class FailureMatrix : public CacheBehaviorTest {
 protected:
  void TearDown() override {
    fp::clear();
    CacheBehaviorTest::TearDown();
  }
};

TEST_F(FailureMatrix, InjectedEnospcMidStoreDegradesToRecompute) {
  TempCacheDir scratch("flowcache_enospc/");
  fc::ScopedCacheDir armed(scratch.dir());

  // ENOSPC on the first store: the flow must still succeed, counting one
  // store error and writing no entry (and leaving no temp file).
  fp::configure("flowcache.store.write:1");
  FlowResult cold;
  EXPECT_NO_THROW(cold = runFlow(smallDigit(), mainDevice(), {}));
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheStoreError), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 0u);
  EXPECT_TRUE(tmpFilesIn(scratch.dir()).empty());
  EXPECT_TRUE(fs::is_empty(scratch.dir()));

  // The budget is spent: the next run recomputes (miss — nothing was
  // stored), stores successfully, and matches the degraded run byte for
  // byte.
  telemetry::reset();
  const FlowResult warm = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheStoreError), 0u);
  EXPECT_EQ(serialize(cold), serialize(warm));

  // And the healed entry hits.
  telemetry::reset();
  const FlowResult hit = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 1u);
  EXPECT_EQ(serialize(cold), serialize(hit));
}

TEST_F(FailureMatrix, RenameFailureRemovesTheOrphanedTempFile) {
  TempCacheDir scratch("flowcache_rename/");
  fc::ScopedCacheDir armed(scratch.dir());

  fp::configure("flowcache.store.rename:1");
  const FlowResult cold = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheStoreError), 1u);
  EXPECT_TRUE(fs::is_empty(scratch.dir()))
      << "rename failure must remove the temp file";

  // Warm run (budget spent) still byte-identical to the degraded cold run.
  telemetry::reset();
  const FlowResult warm = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(serialize(cold), serialize(warm));
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 1u);
}

TEST_F(FailureMatrix, OpenFailureOnStoreDegradesToo) {
  TempCacheDir scratch("flowcache_openfail/");
  const fc::FlowCache cache(scratch.dir());
  fp::configure("flowcache.store.open:1");
  EXPECT_FALSE(cache.store("00deadbeef00cafe", "payload"));
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheStoreError), 1u);
  EXPECT_TRUE(fs::is_empty(scratch.dir()));
  EXPECT_TRUE(cache.store("00deadbeef00cafe", "payload"));
  EXPECT_EQ(cache.load("00deadbeef00cafe"), "payload");
}

TEST_F(FailureMatrix, InjectedLoadErrorRecomputesWithoutServingBytes) {
  TempCacheDir scratch("flowcache_loadfail/");
  fc::ScopedCacheDir armed(scratch.dir());

  const FlowResult cold = runFlow(smallDigit(), mainDevice(), {});

  // The stored entry is fine, but reading it fails (injected): the run
  // must recompute — and produce identical bytes — rather than abort.
  telemetry::reset();
  fp::configure("flowcache.load:1");
  const FlowResult degraded = runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheLoadError), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 0u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheMiss), 0u);
  EXPECT_EQ(serialize(cold), serialize(degraded));

  // Budget spent: the entry (self-healed by the recompute's store) hits.
  telemetry::reset();
  (void)runFlow(smallDigit(), mainDevice(), {});
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheHit), 1u);
}

TEST_F(FailureMatrix, MultiDesignRunFlowsSurvivesOneStoreFailure) {
  // The acceptance scenario: HCP_FAILPOINTS=flowcache.store:1 armed, a
  // multi-design runFlows completes, produces results byte-identical to a
  // cache-disabled run, and reports flowcache_store_error == 1.
  auto makeSuite = [] {
    std::vector<apps::AppDesign> designs;
    designs.push_back(smallFace());
    designs.push_back(smallDigit());
    designs.push_back(smallSpam());
    return designs;
  };
  auto baselineDesigns = makeSuite();
  const auto baseline = runFlows(baselineDesigns, mainDevice(), {});  // no cache

  TempCacheDir scratch("flowcache_acceptance/");
  fc::ScopedCacheDir armed(scratch.dir());
  telemetry::reset();
  fp::configure("flowcache.store:1");
  auto designs = makeSuite();
  std::vector<FlowResult> flows;
  EXPECT_NO_THROW(flows = runFlows(designs, mainDevice(), {}));
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheStoreError), 1u);
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheWrite), 2u);
  ASSERT_EQ(flows.size(), baseline.size());
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_EQ(serialize(flows[i]), serialize(baseline[i]));
  EXPECT_TRUE(tmpFilesIn(scratch.dir()).empty());
}

TEST_F(FailureMatrix, ReadOnlyCacheDirDegradesEveryStore) {
  if (::geteuid() == 0)
    GTEST_SKIP() << "running as root: permission bits are not enforced";
  TempCacheDir scratch("flowcache_readonly/");
  const fc::FlowCache cache(scratch.dir());
  fs::permissions(scratch.dir(), fs::perms::owner_read | fs::perms::owner_exec,
                  fs::perm_options::replace);
  EXPECT_FALSE(cache.store("00deadbeef00cafe", "payload"));
  EXPECT_EQ(counter(telemetry::Counter::FlowCacheStoreError), 1u);
  fs::permissions(scratch.dir(), fs::perms::owner_all,
                  fs::perm_options::replace);
}

// --- plumbing ---------------------------------------------------------------

TEST(FlowCachePlumbing, ScopedCacheDirArmsAndRestores) {
  const std::string before = fc::globalDir();
  {
    TempCacheDir scratch("flowcache_scoped/");
    fc::ScopedCacheDir armed(scratch.dir());
    EXPECT_EQ(fc::globalDir(), scratch.dir());
    EXPECT_NE(fc::global(), nullptr);
    EXPECT_TRUE(fs::is_directory(scratch.dir()));
  }
  EXPECT_EQ(fc::globalDir(), before);
}

TEST(FlowCachePlumbing, StoreIsAtomicReplace) {
  TempCacheDir scratch("flowcache_replace/");
  const fc::FlowCache cache(scratch.dir());
  cache.store("feedfacefeedface", "first");
  cache.store("feedfacefeedface", "second");
  EXPECT_EQ(cache.load("feedfacefeedface"), "second");
  // No temp files left behind.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(scratch.dir())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(FlowCachePlumbing, MissOnEmptyDirectoryCountsMiss) {
  telemetry::setEnabled(true);
  telemetry::reset();
  TempCacheDir scratch("flowcache_miss/");
  const fc::FlowCache cache(scratch.dir());
  EXPECT_FALSE(cache.load("0123456789abcdef").has_value());
  EXPECT_EQ(telemetry::snapshot().counter(telemetry::Counter::FlowCacheMiss),
            1u);
  EXPECT_EQ(
      telemetry::snapshot().counter(telemetry::Counter::FlowCacheCorrupt),
      0u);
  telemetry::reset();
  telemetry::setEnabled(false);
}

}  // namespace
}  // namespace hcp::core
