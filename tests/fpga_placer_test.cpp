#include <gtest/gtest.h>

#include <set>

#include "fpga/placer.hpp"

namespace hcp::fpga {
namespace {

/// Synthetic packing: `n` CLB clusters in a ring of nets.
Packing ringPacking(std::size_t n, std::uint16_t width = 8) {
  Packing p;
  p.clusters.resize(n);
  for (auto& c : p.clusters) {
    c.site = TileType::Clb;
    c.lut = 4.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    ClusterNet net;
    net.width = width;
    net.driver = static_cast<ClusterId>(i);
    net.sinks = {static_cast<ClusterId>((i + 1) % n)};
    p.nets.push_back(std::move(net));
  }
  return p;
}

TEST(Placer, LegalAssignment) {
  const auto packing = ringPacking(50);
  const Device dev = Device::xc7z020like();
  const auto placement = place(packing, dev, {});
  ASSERT_EQ(placement.tileOfCluster.size(), 50u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  for (std::size_t c = 0; c < 50; ++c) {
    const TileXY t = placement.tileOfCluster[c];
    EXPECT_EQ(dev.tileType(t.x, t.y), TileType::Clb);
    EXPECT_TRUE(used.insert({t.x, t.y}).second) << "tile double-booked";
  }
}

TEST(Placer, DeterministicForSeed) {
  const auto packing = ringPacking(40);
  const Device dev = Device::xc7z020like();
  PlacerConfig cfg;
  cfg.seed = 5;
  const auto a = place(packing, dev, cfg);
  const auto b = place(packing, dev, cfg);
  for (std::size_t c = 0; c < 40; ++c) {
    EXPECT_EQ(a.tileOfCluster[c].x, b.tileOfCluster[c].x);
    EXPECT_EQ(a.tileOfCluster[c].y, b.tileOfCluster[c].y);
  }
}

TEST(Placer, DifferentSeedsDiffer) {
  const auto packing = ringPacking(40);
  const Device dev = Device::xc7z020like();
  PlacerConfig a, b;
  a.seed = 1;
  b.seed = 2;
  const auto pa = place(packing, dev, a);
  const auto pb = place(packing, dev, b);
  bool anyDiff = false;
  for (std::size_t c = 0; c < 40; ++c)
    anyDiff |= pa.tileOfCluster[c].x != pb.tileOfCluster[c].x ||
               pa.tileOfCluster[c].y != pb.tileOfCluster[c].y;
  EXPECT_TRUE(anyDiff);
}

TEST(Placer, AnnealingBeatsRandom) {
  const auto packing = ringPacking(120, 16);
  const Device dev = Device::xc7z020like();
  PlacerConfig lazy;
  lazy.effort = 0.01;  // barely anneals ~ random
  PlacerConfig keen;
  keen.effort = 15.0;
  const double costLazy =
      totalWirelength(packing, place(packing, dev, lazy));
  const double costKeen =
      totalWirelength(packing, place(packing, dev, keen));
  // A ring is adversarial for swap-based SA (it needs a global ordering),
  // so expect a solid improvement rather than near-optimality.
  EXPECT_LT(costKeen, costLazy * 0.7);
}

TEST(Placer, RespectsSiteClasses) {
  Packing p;
  Cluster clb;
  clb.site = TileType::Clb;
  Cluster dsp;
  dsp.site = TileType::Dsp;
  Cluster bram;
  bram.site = TileType::Bram;
  Cluster io;
  io.site = TileType::Io;
  p.clusters = {clb, dsp, bram, io};
  ClusterNet net;
  net.width = 8;
  net.driver = 0;
  net.sinks = {1, 2, 3};
  p.nets.push_back(net);
  const Device dev = Device::xc7z020like();
  const auto placement = place(p, dev, {});
  EXPECT_EQ(dev.tileType(placement.tileOfCluster[1].x,
                         placement.tileOfCluster[1].y),
            TileType::Dsp);
  EXPECT_EQ(dev.tileType(placement.tileOfCluster[3].x,
                         placement.tileOfCluster[3].y),
            TileType::Io);
}

TEST(Placer, DensitySpreadingReducesPeakRegionLoad) {
  // A clique of high-pin clusters: pure HPWL wants them in one spot.
  Packing p;
  const std::size_t n = 64;
  p.clusters.resize(n);
  for (auto& c : p.clusters) {
    c.site = TileType::Clb;
    c.lut = 4.0;
  }
  hcp::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      ClusterNet net;
      net.width = 24;
      net.driver = static_cast<ClusterId>(i);
      net.sinks = {static_cast<ClusterId>(rng.uniformInt(n))};
      if (net.sinks[0] == net.driver) continue;
      p.nets.push_back(std::move(net));
    }
  const Device dev = Device::xc7z020like();

  auto maxRegionPins = [&](const Placement& pl) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> pins;
    for (std::size_t c = 0; c < n; ++c) {
      double cp = 0;
      for (const auto& net : p.nets) {
        if (net.driver == c) cp += net.width;
        for (auto s : net.sinks)
          if (s == c) cp += net.width;
      }
      const TileXY t = pl.tileOfCluster[c];
      pins[{t.x / 6, t.y / 6}] += cp;
    }
    double m = 0;
    for (auto& [k, v] : pins) m = std::max(m, v);
    return m;
  };

  PlacerConfig dense;
  dense.densityWeight = 0.0;
  PlacerConfig spread;
  spread.densityWeight = 3.0;
  const double peakDense = maxRegionPins(place(p, dev, dense));
  const double peakSpread = maxRegionPins(place(p, dev, spread));
  EXPECT_LE(peakSpread, peakDense);
}

/// Random packing with a fanout mix chosen to exercise both NetRec layouts:
/// mostly small nets (inline pins) plus a tail of high-fanout nets (spilled
/// box + per-edge pin counts with rescans on bounding-edge shrink).
Packing randomPacking(std::uint64_t seed, std::size_t n) {
  Packing p;
  p.clusters.resize(n);
  for (auto& c : p.clusters) {
    c.site = TileType::Clb;
    c.lut = 4.0;
  }
  hcp::Rng rng(seed);
  const std::size_t numNets = n * 2;
  for (std::size_t i = 0; i < numNets; ++i) {
    ClusterNet net;
    net.width = static_cast<std::uint16_t>(1 + rng.uniformInt(32));
    net.driver = static_cast<ClusterId>(rng.uniformInt(n));
    // ~80% small (fits the inline-pin record), ~20% high fanout.
    const std::size_t fanout =
        rng.uniformInt(5) == 0 ? 6 + rng.uniformInt(18) : 1 + rng.uniformInt(4);
    std::set<ClusterId> sinks;
    for (std::size_t s = 0; s < fanout; ++s) {
      const auto c = static_cast<ClusterId>(rng.uniformInt(n));
      if (c != net.driver) sinks.insert(c);
    }
    if (sinks.empty()) continue;
    net.sinks.assign(sinks.begin(), sinks.end());
    p.nets.push_back(std::move(net));
  }
  return p;
}

TEST(Placer, IncrementalKernelMatchesReferenceBitExact) {
  // The incremental O(1) bounding-box kernel must replay the reference
  // algorithm exactly: same RNG stream, same accept decisions, bit-equal
  // cost. Randomized over seeds and sizes so both the inline-pin and the
  // spilled edge-count paths (including rescans) are exercised.
  const Device dev = Device::xc7z020like();
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    for (std::size_t n : {24u, 180u, 700u}) {
      const auto packing = randomPacking(seed * 1000 + n, n);
      PlacerConfig ref;
      ref.seed = seed;
      ref.effort = 8.0;
      ref.costUpdate = PlacerConfig::CostUpdate::kReference;
      PlacerConfig inc = ref;
      inc.costUpdate = PlacerConfig::CostUpdate::kIncremental;
      const auto a = place(packing, dev, ref);
      const auto b = place(packing, dev, inc);
      ASSERT_EQ(a.movesTried, b.movesTried) << "seed " << seed << " n " << n;
      ASSERT_EQ(a.movesAccepted, b.movesAccepted)
          << "seed " << seed << " n " << n;
      ASSERT_EQ(a.cost, b.cost) << "seed " << seed << " n " << n;
      ASSERT_EQ(a.tileOfCluster.size(), b.tileOfCluster.size());
      for (std::size_t c = 0; c < a.tileOfCluster.size(); ++c) {
        ASSERT_EQ(a.tileOfCluster[c].x, b.tileOfCluster[c].x)
            << "cluster " << c << " seed " << seed << " n " << n;
        ASSERT_EQ(a.tileOfCluster[c].y, b.tileOfCluster[c].y)
            << "cluster " << c << " seed " << seed << " n " << n;
      }
    }
  }
}

TEST(Placer, IncrementalKernelMatchesReferenceWithDensity) {
  // Same contract with the congestion penalty active (density deltas join
  // the cost sum; the summation order must still match the reference).
  const Device dev = Device::xc7z020like();
  const auto packing = randomPacking(99, 256);
  PlacerConfig ref;
  ref.seed = 5;
  ref.densityWeight = 2.0;
  ref.costUpdate = PlacerConfig::CostUpdate::kReference;
  PlacerConfig inc = ref;
  inc.costUpdate = PlacerConfig::CostUpdate::kIncremental;
  const auto a = place(packing, dev, ref);
  const auto b = place(packing, dev, inc);
  EXPECT_EQ(a.movesTried, b.movesTried);
  EXPECT_EQ(a.movesAccepted, b.movesAccepted);
  EXPECT_EQ(a.cost, b.cost);
  for (std::size_t c = 0; c < a.tileOfCluster.size(); ++c) {
    ASSERT_EQ(a.tileOfCluster[c].x, b.tileOfCluster[c].x);
    ASSERT_EQ(a.tileOfCluster[c].y, b.tileOfCluster[c].y);
  }
}

TEST(Placer, WirelengthMatchesCostTracking) {
  const auto packing = ringPacking(30);
  const Device dev = Device::xc7z020like();
  const auto placement = place(packing, dev, {});
  // Incremental cost bookkeeping must agree with a fresh recount (the cost
  // includes q-factor weighting, so compare against hand-computed HPWL).
  EXPECT_GT(placement.cost, 0.0);
  EXPECT_GT(placement.movesAccepted, 0u);
  EXPECT_GT(totalWirelength(packing, placement), 0.0);
}

}  // namespace
}  // namespace hcp::fpga
