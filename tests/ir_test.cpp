#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/builder.hpp"
#include "ir/module.hpp"
#include "ir/opcode.hpp"
#include "ir/verifier.hpp"

namespace hcp::ir {
namespace {

TEST(Opcode, ExactlyFiftyThreeKinds) {
  // The feature registry's operator-type category depends on this count
  // (2 * 53 + 1 = 107 features).
  EXPECT_EQ(kNumOpcodes, 53u);
}

TEST(Opcode, NamesUniqueAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    const auto name = opcodeName(opcodeFromIndex(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate: " << name;
  }
}

TEST(Opcode, SideEffectClassification) {
  EXPECT_TRUE(hasSideEffects(Opcode::Store));
  EXPECT_TRUE(hasSideEffects(Opcode::WritePort));
  EXPECT_TRUE(hasSideEffects(Opcode::Ret));
  EXPECT_FALSE(hasSideEffects(Opcode::Add));
  EXPECT_FALSE(hasSideEffects(Opcode::Load));
}

TEST(Opcode, WiringOpsAreNotFunctionalUnits) {
  for (Opcode op : {Opcode::Trunc, Opcode::ZExt, Opcode::SExt,
                    Opcode::Extract, Opcode::Passthrough, Opcode::BitCast,
                    Opcode::Call, Opcode::Const, Opcode::Phi}) {
    EXPECT_FALSE(isFunctionalUnit(op)) << opcodeName(op);
  }
  for (Opcode op : {Opcode::Add, Opcode::Mul, Opcode::Load, Opcode::Select,
                    Opcode::PopCount}) {
    EXPECT_TRUE(isFunctionalUnit(op)) << opcodeName(op);
  }
}

TEST(Opcode, SharableOpsAreExpensive) {
  EXPECT_TRUE(isSharable(Opcode::Mul));
  EXPECT_TRUE(isSharable(Opcode::Div));
  EXPECT_TRUE(isSharable(Opcode::FMul));
  EXPECT_FALSE(isSharable(Opcode::Add));
  EXPECT_FALSE(isSharable(Opcode::Xor));
}

// --- builder ---------------------------------------------------------------

TEST(Builder, BinaryInfersWidth) {
  Function fn("f");
  Builder b(fn);
  const auto p = b.inPort("x", 16);
  const auto out = b.outPort("y", 32);
  const OpId x = b.readPort(p);
  const OpId c = b.constant(3, 8);
  const OpId sum = b.add(x, c);
  EXPECT_EQ(fn.op(sum).bitwidth, 16);  // max of operand widths
  const OpId prod = b.mul(x, c);
  EXPECT_EQ(fn.op(prod).bitwidth, 24);  // sum of widths
  b.writePort(out, prod);
  b.ret();
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Builder, CompareIsOneBit) {
  Function fn("f");
  Builder b(fn);
  const auto p = b.inPort("x", 16);
  const auto out = b.outPort("y", 1);
  const OpId x = b.readPort(p);
  const OpId cmp = b.icmpGt(x, b.constant(5, 8));
  EXPECT_EQ(fn.op(cmp).bitwidth, 1);
  b.writePort(out, cmp);
  b.ret();
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Builder, TruncUsesFewerWires) {
  Function fn("f");
  Builder b(fn);
  const auto p = b.inPort("x", 32);
  const OpId x = b.readPort(p);
  const OpId t = b.trunc(x, 8);
  // The paper's edge weight: the connection carries only the used bits.
  EXPECT_EQ(fn.op(t).operands[0].bitsUsed, 8);
}

TEST(Builder, PopcountWidth) {
  Function fn("f");
  Builder b(fn);
  const auto p = b.inPort("x", 32);
  const OpId x = b.readPort(p);
  const OpId pc = b.popcount(x);
  // 32 -> needs 6 bits (values 0..32).
  EXPECT_EQ(fn.op(pc).bitwidth, 6);
}

TEST(Builder, LoopNesting) {
  Function fn("f");
  Builder b(fn);
  const LoopId outer = b.beginLoop("outer", 10);
  const LoopId inner = b.beginLoop("inner", 4);
  const OpId c = b.constant(1, 8);
  EXPECT_EQ(fn.op(c).loop, inner);
  b.endLoop();
  const OpId c2 = b.constant(2, 8);
  EXPECT_EQ(fn.op(c2).loop, outer);
  b.endLoop();
  b.ret();
  EXPECT_EQ(fn.loop(inner).parent, outer);
  EXPECT_EQ(fn.iterationProduct(c), 40u);
  EXPECT_EQ(fn.iterationProduct(c2), 10u);
}

TEST(Builder, EndLoopWithoutBeginThrows) {
  Function fn("f");
  Builder b(fn);
  EXPECT_THROW(b.endLoop(), hcp::Error);
}

TEST(Builder, SourceLineProvenance) {
  Function fn("f");
  Builder b(fn);
  b.atLine(77);
  const OpId c = b.constant(0, 4);
  EXPECT_EQ(fn.op(c).sourceLine, 77);
}

// --- verifier ----------------------------------------------------------

TEST(Verifier, MissingRetReported) {
  Function fn("f");
  Builder b(fn);
  b.constant(1, 4);
  const auto errors = verify(fn);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("missing ret"), std::string::npos);
}

TEST(Verifier, UseBeforeDefReported) {
  Function fn("f");
  Builder b(fn);
  Op op;
  op.opcode = Opcode::Neg;
  op.bitwidth = 8;
  op.operands = {Operand{5, 8}};  // forward reference
  fn.addOp(std::move(op));
  b.ret();
  // Either "use before def" or "operand out of range" depending on count.
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Verifier, OverWideOperandReported) {
  Function fn("f");
  Builder b(fn);
  const OpId c = b.constant(1, 4);
  Op op;
  op.opcode = Opcode::Neg;
  op.bitwidth = 8;
  op.operands = {Operand{c, 8}};  // uses 8 bits of a 4-bit value
  fn.addOp(std::move(op));
  b.ret();
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Verifier, PortDirectionEnforced) {
  Function fn("f");
  Builder b(fn);
  const auto out = b.outPort("o", 8);
  Op op;
  op.opcode = Opcode::ReadPort;
  op.bitwidth = 8;
  op.port = out;
  fn.addOp(std::move(op));
  b.ret();
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Verifier, CleanFunctionPasses) {
  Function fn("f");
  Builder b(fn);
  const auto in = b.inPort("i", 16);
  const auto out = b.outPort("o", 16);
  const auto arr = b.array("mem", 32, 16);
  const OpId x = b.readPort(in);
  const OpId idx = b.constant(3, 8);
  b.store(arr, idx, x);
  const OpId y = b.load(arr, idx);
  b.writePort(out, y);
  b.ret();
  EXPECT_TRUE(verify(fn).empty());
}

// --- module ------------------------------------------------------------

TEST(Module, DuplicateFunctionRejected) {
  Module mod("m");
  auto mk = [] {
    auto fn = std::make_unique<Function>("dup");
    Builder b(*fn);
    b.ret();
    return fn;
  };
  mod.addFunction(mk());
  EXPECT_THROW(mod.addFunction(mk()), hcp::Error);
}

TEST(Module, UnknownCalleeReported) {
  Module mod("m");
  auto fn = std::make_unique<Function>("top");
  Builder b(*fn);
  const OpId c = b.constant(1, 8);
  b.call("ghost", {c}, 8);
  b.ret();
  mod.addFunction(std::move(fn));
  mod.setTop("top");
  const auto errors = verify(mod);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("ghost"), std::string::npos);
}

TEST(Module, RecursionDetected) {
  Module mod("m");
  auto fn = std::make_unique<Function>("rec");
  Builder b(*fn);
  const auto in = b.inPort("x", 8);
  const OpId x = b.readPort(in);
  b.call("rec", {x}, 8);
  b.ret();
  mod.addFunction(std::move(fn));
  mod.setTop("rec");
  bool sawRecursion = false;
  for (const auto& e : verify(mod))
    if (e.find("recursive") != std::string::npos) sawRecursion = true;
  EXPECT_TRUE(sawRecursion);
}

TEST(Module, TopMustExist) {
  Module mod("m");
  EXPECT_THROW(mod.setTop("none"), hcp::Error);
}

}  // namespace
}  // namespace hcp::ir
