// The hcp_serve test battery (tentpole of the serving-daemon PR):
//
//   1. Protocol: strict request validation — bad JSON, wrong types, unknown
//      ops/fields, the design-XOR-key rule for flow — every violation comes
//      back as a client-safe error with the id still echoed, never a throw.
//   2. Robustness: oversized lines, queue-full admission, truncated final
//      lines and failpoint-injected per-request faults each produce one
//      {"ok":false,...} response while the daemon keeps serving.
//   3. Determinism: a mixed flow+predict window produces byte-identical
//      response streams at 1 thread and at 4, and duplicate requests in one
//      window share a single computation (and body) via work-key dedupe.
//   4. Degraded-cache visibility: a cache I/O failure latches
//      flowcache::degraded(), bumps the flowcache_degraded gauge once, and
//      shows up in the status op.
//   5. SIGPIPE: the default disposition kills the process mid-write;
//      support::ignoreSigpipe() turns it into a visible EPIPE.
//   6. Observability (the tracing/metrics PR): the metrics op, the tick
//      clock's byte-identical-across-thread-counts contract, per-request
//      span trees in the trace ring, failpoint-degraded metrics snapshots,
//      and hcp_top's scrape path against a live socket daemon.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"
#include "serve/fdio.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/top.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/flowcache.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/signals.hpp"
#include "support/telemetry.hpp"
#include "support/tracing.hpp"
#include "test_util.hpp"

namespace hcp::serve {
namespace {

namespace fc = support::flowcache;
namespace fs = std::filesystem;
namespace telemetry = support::telemetry;

using hcp::test::TempDir;

/// Feeds `input` through a fresh serve loop and returns the response bytes.
std::string serveAll(Server& server, const std::string& input) {
  std::istringstream is(input);
  std::ostringstream os;
  EXPECT_TRUE(server.serve(is, os));
  return os.str();
}

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

// --- 1. protocol validation --------------------------------------------------

TEST(ServeProtocol, ValidRequestsParse) {
  const auto p = parseRequest(
      R"({"id":"r1","op":"predict","design":"spam_filter","top_k":5})");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.op, Op::Predict);
  EXPECT_EQ(p.request.id, "r1");
  EXPECT_EQ(p.request.design, "spam_filter");
  EXPECT_EQ(p.request.topK, 5u);
  EXPECT_TRUE(p.request.directives);

  const auto f = parseRequest(
      R"({"op":"flow","design":"bnn","seed":9,"directives":false})");
  ASSERT_TRUE(f.ok) << f.error;
  EXPECT_EQ(f.request.op, Op::Flow);
  EXPECT_EQ(f.request.seed, 9u);
  EXPECT_FALSE(f.request.directives);

  const auto k = parseRequest(R"({"op":"flow","key":"0123456789abcdef"})");
  ASSERT_TRUE(k.ok) << k.error;
  EXPECT_EQ(k.request.cacheKey, "0123456789abcdef");

  EXPECT_TRUE(parseRequest(R"({"op":"status"})").ok);
  EXPECT_TRUE(parseRequest(R"({"op":"shutdown"})").ok);

  const auto m = parseRequest(R"({"id":"m1","op":"metrics"})");
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_EQ(m.request.op, Op::Metrics);
  EXPECT_EQ(m.request.id, "m1");
}

TEST(ServeProtocol, ViolationsAreErrorsNotThrows) {
  const char* bad[] = {
      "not json at all",
      "{\"op\":\"predict\",}",                       // trailing comma
      "[1,2,3]",                                     // not an object
      "{}",                                          // missing op
      R"({"op":"frobnicate"})",                      // unknown op
      R"({"op":42})",                                // op wrong type
      R"({"op":"predict"})",                         // predict needs design
      R"({"op":"predict","design":7})",              // design wrong type
      R"({"op":"predict","design":"bnn","extra":1})",  // unknown field
      R"({"op":"predict","design":"bnn","top_k":0})",  // zero top_k
      R"({"op":"predict","design":"bnn","top_k":2.5})",  // fractional
      R"({"op":"predict","design":"bnn","seed":1})",  // seed is flow-only
      R"({"op":"flow"})",                            // neither design nor key
      R"({"op":"flow","design":"bnn","key":"0123456789abcdef"})",  // both
      R"({"op":"flow","key":"SHOUTY"})",             // malformed key
      R"({"op":"flow","key":"0123456789abcde"})",    // 15 chars
      R"({"op":"flow","design":"bnn","seed":-1})",   // negative seed
      R"({"op":"status","design":"bnn"})",           // field on status
      R"({"op":"metrics","design":"bnn"})",          // field on metrics
      R"({"op":"metrics","top_k":3})",               // field on metrics
  };
  for (const char* line : bad) {
    const auto p = parseRequest(line);
    EXPECT_FALSE(p.ok) << "accepted: " << line;
    EXPECT_FALSE(p.error.empty());
  }
}

TEST(ServeProtocol, IdSurvivesRejection) {
  const auto p = parseRequest(R"({"id":"r7","op":"frobnicate"})");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.request.id, "r7");
  EXPECT_EQ(errorResponse(p.request, p.error).substr(0, 12), "{\"id\":\"r7\",\"");
}

TEST(ServeProtocol, WorkKeyIgnoresIdAndSeparatesEverythingElse) {
  auto req = [](const char* text) {
    const auto p = parseRequest(text);
    EXPECT_TRUE(p.ok) << p.error;
    return p.request;
  };
  const auto a = req(R"({"id":"x","op":"flow","design":"bnn","seed":7})");
  const auto b = req(R"({"id":"y","op":"flow","design":"bnn","seed":7})");
  EXPECT_EQ(workKey(a), workKey(b));
  EXPECT_NE(workKey(a),
            workKey(req(R"({"op":"flow","design":"bnn","seed":8})")));
  EXPECT_NE(workKey(a), workKey(req(R"({"op":"predict","design":"bnn"})")));
  EXPECT_NE(workKey(req(R"({"op":"predict","design":"bnn"})")),
            workKey(req(
                R"({"op":"predict","design":"bnn","directives":false})")));
}

TEST(ServeProtocol, ResponsePrefixEscapesId) {
  Request r;
  r.id = "a\"b\\c\n";
  EXPECT_EQ(responsePrefix(r), "{\"id\":\"a\\\"b\\\\c\\n\",");
  r.id.clear();
  EXPECT_EQ(responsePrefix(r), "{");
}

// --- 2. robustness ----------------------------------------------------------

TEST(ServeServer, MalformedLinesGetErrorResponsesAndServingContinues) {
  Server server({});
  const auto out = lines(serveAll(server,
                                  "garbage\n"
                                  "{\"id\":\"ok1\",\"op\":\"status\"}\n"
                                  "{\"op\":\"nope\"}\n"
                                  "\n"
                                  "{\"id\":\"ok2\",\"op\":\"status\"}\n"));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NE(out[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(out[1].find("\"id\":\"ok1\""), std::string::npos);
  EXPECT_NE(out[1].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(out[2].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(out[3].find("\"id\":\"ok2\""), std::string::npos);
  EXPECT_EQ(server.stats().served, 4u);
  EXPECT_EQ(server.stats().errors, 2u);
}

TEST(ServeServer, TruncatedFinalLineStillGetsAnswered) {
  Server server({});
  // No trailing newline and no flush marker: EOF must flush what's pending.
  const auto out = lines(serveAll(server, R"({"id":"t","op":"status"})"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("\"id\":\"t\""), std::string::npos);
}

TEST(ServeServer, OversizedLineIsRejectedPerRequest) {
  ServerConfig config;
  config.maxLineBytes = 64;
  Server server(config);
  const std::string big(1000, 'x');
  const auto out = lines(serveAll(
      server, "{\"id\":\"big\",\"op\":\"status\",\"pad\":\"" + big +
                  "\"}\n{\"id\":\"after\",\"op\":\"status\"}\n"));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].find("exceeds 64 bytes"), std::string::npos);
  EXPECT_NE(out[1].find("\"id\":\"after\""), std::string::npos);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ServeServer, QueueFullRejectsBeyondDepthButAnswersEveryLine) {
  ServerConfig config;
  config.queueDepth = 2;
  Server server(config);
  // Three work requests in one window; depth 2 -> the third is rejected.
  // (Unknown designs are fine: admission queues them, execution errors.)
  const auto out = lines(serveAll(server,
                                  "{\"id\":\"w1\",\"op\":\"flow\","
                                  "\"design\":\"no_such_a\"}\n"
                                  "{\"id\":\"w2\",\"op\":\"flow\","
                                  "\"design\":\"no_such_b\"}\n"
                                  "{\"id\":\"w3\",\"op\":\"flow\","
                                  "\"design\":\"no_such_c\"}\n"
                                  "\n"
                                  "{\"id\":\"w4\",\"op\":\"flow\","
                                  "\"design\":\"no_such_d\"}\n"));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NE(out[2].find("queue full (depth 2)"), std::string::npos);
  // The flush drained the queue: w4 is admitted again (and fails on the
  // unknown design, not on queue depth).
  EXPECT_NE(out[3].find("unknown design"), std::string::npos);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().admitted, 3u);
}

TEST(ServeServer, UnknownDesignListsValidNames) {
  Server server({});
  const auto out = lines(
      serveAll(server, R"({"id":"u","op":"flow","design":"nope"})" "\n"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("unknown design 'nope'"), std::string::npos);
  EXPECT_NE(out[0].find("face_detection"), std::string::npos);
}

TEST(ServeServer, PredictWithoutModelErrorsPerRequest) {
  Server server({});
  EXPECT_FALSE(server.hasModel());
  const auto out = lines(serveAll(
      server, R"({"id":"p","op":"predict","design":"spam_filter"})" "\n"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("no model loaded"), std::string::npos);
}

TEST(ServeServer, FlowByKeyWithoutCacheOrEntryErrorsPerRequest) {
  {
    fc::ScopedCacheDir off("");
    Server server({});
    const auto out = lines(serveAll(
        server, R"({"op":"flow","key":"0123456789abcdef"})" "\n"));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].find("needs a flow cache"), std::string::npos);
  }
  TempDir cacheDir("serve_keymiss_cache/");
  fc::ScopedCacheDir cache(cacheDir.dir());
  Server server({});
  const auto out = lines(
      serveAll(server, R"({"op":"flow","key":"0123456789abcdef"})" "\n"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("not in the flow cache"), std::string::npos);
}

TEST(ServeServer, InjectedFaultFailsOneRequestNotTheDaemon) {
  support::failpoint::ScopedFailpoints fp("serve.request:1");
  Server server({});
  const auto out = lines(serveAll(server,
                                  "{\"id\":\"a\",\"op\":\"flow\","
                                  "\"design\":\"no_such\"}\n"
                                  "\n"
                                  "{\"id\":\"b\",\"op\":\"flow\","
                                  "\"design\":\"no_such\"}\n"));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].find("injected serve.request failure"), std::string::npos);
  // Second hit passes the failpoint and fails on the real validation path.
  EXPECT_NE(out[1].find("unknown design"), std::string::npos);
  EXPECT_EQ(server.stats().served, 2u);
}

TEST(ServeServer, ShutdownAnswersThenStopsReading) {
  Server server({});
  std::istringstream is(
      "{\"id\":\"s\",\"op\":\"shutdown\"}\n"
      "{\"id\":\"never\",\"op\":\"status\"}\n");
  std::ostringstream os;
  EXPECT_TRUE(server.serve(is, os));
  EXPECT_TRUE(server.shutdownRequested());
  const auto out = lines(os.str());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("\"op\":\"shutdown\""), std::string::npos);
}

// --- 3. determinism ---------------------------------------------------------

/// Shared expensive fixture: one trained linear model and one primed flow
/// cache, built once for the whole suite.
class ServeDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Each discovered ctest entry runs this suite in its own process, and
    // `ctest -L serve -j N` runs them concurrently — the fixture paths must
    // be per-process or one teardown deletes another process's model/cache.
    const std::string tag = std::to_string(::getpid());
    cacheDir_ = new TempDir("serve_determinism_cache_" + tag + "/");
    modelPath_ = std::string(::testing::TempDir()) + "serve_test_model_" +
                 tag + ".hcp";
    const auto device = fpga::Device::xc7z020like();
    core::FlowConfig cfg;
    cfg.seed = 42;
    std::vector<apps::AppDesign> designs;
    designs.push_back(apps::makeDesign("spam_filter"));
    const auto flows = core::runFlows(designs, device, cfg);
    const auto dataset = core::buildDataset(flows, {});
    core::PredictorOptions opts;
    opts.kind = core::ModelKind::Linear;
    core::CongestionPredictor predictor(opts);
    predictor.train(dataset);
    predictor.save(modelPath_);
  }
  static void TearDownTestSuite() {
    fs::remove(modelPath_);
    delete cacheDir_;
    cacheDir_ = nullptr;
  }

  static TempDir* cacheDir_;
  static std::string modelPath_;
};

TempDir* ServeDeterminism::cacheDir_ = nullptr;
std::string ServeDeterminism::modelPath_;

TEST_F(ServeDeterminism, MixedWindowIsByteIdenticalAcrossThreadCounts) {
  fc::ScopedCacheDir cache(cacheDir_->dir());
  // Flow + duplicate flow + predicts in one window. The duplicate shares
  // the first request's computation (and body) via work-key dedupe, so the
  // serial and parallel schedules cannot diverge on cache timing.
  const std::string window =
      "{\"id\":\"f1\",\"op\":\"flow\",\"design\":\"spam_filter\","
      "\"seed\":7}\n"
      "{\"id\":\"f2\",\"op\":\"flow\",\"design\":\"spam_filter\","
      "\"seed\":7}\n"
      "{\"id\":\"p1\",\"op\":\"predict\",\"design\":\"spam_filter\","
      "\"top_k\":4}\n"
      "{\"id\":\"p2\",\"op\":\"predict\",\"design\":\"digit_recognition\","
      "\"top_k\":4}\n";

  ServerConfig config;
  config.modelPath = modelPath_;

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::ScopedThreadLimit limit(threads);
    // A fresh cold cache per run: the first flow computes, the duplicate
    // replays — at every thread count.
    TempDir runCache("serve_run_cache/");
    fc::ScopedCacheDir runScope(runCache.dir());
    Server server(config);
    const std::string out = serveAll(server, window);
    if (reference.empty()) reference = out;
    EXPECT_EQ(out, reference) << "at " << threads << " threads";
    EXPECT_EQ(server.stats().errors, 0u) << out;
  }
  EXPECT_NE(reference.find("\"id\":\"f1\",\"ok\":true"), std::string::npos);

  // The duplicate's body is byte-identical to the original's (only the id
  // differs), and dedupe means both came from one computation.
  const auto out = lines(reference);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0].substr(std::string("{\"id\":\"f1\",").size()),
            out[1].substr(std::string("{\"id\":\"f2\",").size()));
}

TEST_F(ServeDeterminism, WarmReplayMatchesColdBytesExceptCachedFlag) {
  fc::ScopedCacheDir cache(cacheDir_->dir());
  ServerConfig config;
  Server server(config);
  const std::string window =
      "{\"id\":\"w\",\"op\":\"flow\",\"design\":\"spam_filter\","
      "\"seed\":11}\n";
  std::string cold = serveAll(server, window);
  std::string warm = serveAll(server, window);
  EXPECT_EQ(server.stats().cacheHits, 1u);
  const auto normalize = [](std::string s) {
    const auto at = s.find("\"cached\":");
    if (at != std::string::npos) s.erase(at, s.find(',', at) - at);
    return s;
  };
  EXPECT_NE(cold, warm);  // the cached flag flips...
  EXPECT_EQ(normalize(cold), normalize(warm));  // ...and nothing else

  // The key in the response answers a flow-by-key request with the same
  // payload bytes.
  const auto keyAt = cold.find("\"key\":\"");
  ASSERT_NE(keyAt, std::string::npos);
  const std::string key = cold.substr(keyAt + 7, 16);
  const std::string byKey = serveAll(
      server, "{\"id\":\"w\",\"op\":\"flow\",\"key\":\"" + key + "\"}\n");
  EXPECT_EQ(normalize(byKey), normalize(warm));
}

// --- 4. degraded-cache visibility -------------------------------------------

TEST(ServeDegraded, CacheFailureLatchesGaugeAndShowsInStatus) {
  TempDir cacheDir("serve_degraded_cache/");
  fc::ScopedCacheDir cache(cacheDir.dir());
  fc::detail::resetDegraded();
  telemetry::reset();
  telemetry::setEnabled(true);
  ASSERT_FALSE(fc::degraded());

  {
    support::failpoint::ScopedFailpoints fp("flowcache.store");
    EXPECT_FALSE(fc::global()->store("0123456789abcdef", "payload"));
    EXPECT_FALSE(fc::global()->store("fedcba9876543210", "payload"));
  }
  EXPECT_TRUE(fc::degraded());
  // One-shot gauge: two failures, one count.
  EXPECT_EQ(telemetry::snapshot().counter(
                telemetry::Counter::FlowCacheDegraded),
            1u);

  Server server({});
  const auto out = serveAll(server, "{\"op\":\"status\"}\n");
  EXPECT_NE(out.find("\"flowcache_degraded\":true"), std::string::npos);

  telemetry::setEnabled(false);
  telemetry::reset();
  fc::detail::resetDegraded();
  EXPECT_FALSE(fc::degraded());
}

// --- 5. SIGPIPE -------------------------------------------------------------

TEST(ServeSigpipeDeathTest, DefaultDispositionKillsOnClosedPipe) {
  EXPECT_EXIT(
      {
        std::signal(SIGPIPE, SIG_DFL);
        int fds[2];
        if (pipe(fds) != 0) _exit(3);
        close(fds[0]);
        (void)!write(fds[1], "x", 1);
        _exit(0);  // unreachable under SIG_DFL
      },
      ::testing::KilledBySignal(SIGPIPE), "");
}

TEST(ServeSigpipe, IgnoredDispositionSurfacesEpipe) {
  support::ignoreSigpipe();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  errno = 0;
  EXPECT_EQ(write(fds[1], "x", 1), -1);
  EXPECT_EQ(errno, EPIPE);
  close(fds[1]);
}

// --- 6. observability --------------------------------------------------------

namespace json = support::json;
namespace tracing = support::tracing;

TEST(ServeObservability, StatusReportsUptimeAndInFlight) {
  ServerConfig config;
  config.tickNs = 1000;  // logical clock: uptime is exact and replayable
  Server server(config);
  const auto out = lines(serveAll(server, "{\"op\":\"status\"}\n"));
  ASSERT_EQ(out.size(), 1u);
  const json::Value v = json::parse(out[0]);
  const json::Value* uptime = v.find("uptime_ms");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GT(uptime->asNumber(), 0.0);
  const json::Value* inFlight = v.find("requests_in_flight");
  ASSERT_NE(inFlight, nullptr);
  EXPECT_EQ(inFlight->asNumber(), 0.0);
}

TEST(ServeObservability, MetricsOpAnswersWithCountersAndPercentiles) {
  ServerConfig config;
  config.tickNs = 1000;
  Server server(config);
  const auto out = lines(serveAll(
      server,
      "{\"id\":\"w\",\"op\":\"flow\",\"design\":\"no_such\"}\n"
      "\n"
      "{\"id\":\"m\",\"op\":\"metrics\"}\n"));
  ASSERT_EQ(out.size(), 2u);
  const json::Value v = json::parse(out[1]);
  EXPECT_TRUE(v.find("ok")->asBool());
  EXPECT_EQ(v.find("op")->asString(), "metrics");
  const json::Value* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* lat = hists->find("serve_request_latency_ms");
  ASSERT_NE(lat, nullptr);
  // The flushed window's request was observed before the metrics op ran.
  EXPECT_GE(lat->find("count")->asNumber(), 1.0);
  for (const char* field : {"p50", "p90", "p99", "min", "max", "sum"})
    EXPECT_NE(lat->find(field), nullptr) << field;
  const json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("metrics_write_error"), nullptr);
}

TEST_F(ServeDeterminism, MetricsByteIdenticalAcrossThreadCounts) {
  // The acceptance contract: the same request stream under the logical tick
  // clock yields byte-identical responses — metrics op included, latency
  // percentiles and all — at 1, 2 and 4 threads.
  const std::string window =
      "{\"id\":\"f1\",\"op\":\"flow\",\"design\":\"spam_filter\","
      "\"seed\":7}\n"
      "{\"id\":\"f2\",\"op\":\"flow\",\"design\":\"spam_filter\","
      "\"seed\":7}\n"
      "{\"id\":\"p1\",\"op\":\"predict\",\"design\":\"spam_filter\","
      "\"top_k\":4}\n"
      "{\"id\":\"s\",\"op\":\"status\"}\n"
      "\n"
      "{\"id\":\"m\",\"op\":\"metrics\"}\n";

  ServerConfig config;
  config.modelPath = modelPath_;
  config.tickNs = 1000;

  std::string reference;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    support::ScopedThreadLimit limit(threads);
    TempDir runCache("serve_metrics_det_cache/");
    fc::ScopedCacheDir runScope(runCache.dir());
    // The telemetry registry is global and monotone: each run starts from
    // zero so the metrics payloads compare whole.
    telemetry::reset();
    Server server(config);
    const std::string out = serveAll(server, window);
    if (reference.empty()) reference = out;
    EXPECT_EQ(out, reference) << "at " << threads << " threads";
  }
  telemetry::reset();
  EXPECT_NE(reference.find("\"op\":\"metrics\""), std::string::npos);
  EXPECT_NE(reference.find("serve_request_latency_ms"), std::string::npos);
}

TEST(ServeObservability, RequestSpanTreeInTrace) {
  tracing::setBufferCapacity(1 << 12);
  tracing::setEnabled(true);
  tracing::reset();

  ServerConfig config;
  config.tickNs = 1000;
  Server server(config);
  serveAll(server,
           "{\"id\":\"r1\",\"op\":\"flow\",\"design\":\"no_such\"}\n"
           "\n"
           "{\"op\":\"status\"}\n");

  std::ostringstream os;
  tracing::TraceMeta meta;
  meta.tool = "test";
  tracing::writeChromeTrace(os, meta);
  tracing::setEnabled(false);
  tracing::reset();

  const json::Value doc = json::parse(os.str());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Collect the X (complete) events by request correlation id.
  std::vector<std::string> r1Phases, anonPhases;
  for (const json::Value& e : events->array) {
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || ph->asString() != "X") continue;
    ASSERT_NE(e.find("dur"), nullptr);
    const json::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const json::Value* request = args->find("request");
    ASSERT_NE(request, nullptr);
    if (request->asString() == "r1")
      r1Phases.push_back(e.find("name")->asString());
    else if (request->asString() == "#2")  // the id-less status request
      anonPhases.push_back(e.find("name")->asString());
  }
  // The executed flow request has the full tree; the admission-resolved
  // status request has no batch_exec phase.
  const std::vector<std::string> expectFull = {
      "serve/request", "serve/request/queue_wait", "serve/request/batch_exec",
      "serve/request/serialize"};
  const std::vector<std::string> expectResolved = {
      "serve/request", "serve/request/queue_wait", "serve/request/serialize"};
  EXPECT_EQ(r1Phases, expectFull);
  EXPECT_EQ(anonPhases, expectResolved);
}

TEST(ServeObservability, MetricsSnapshotWriteFailureDegrades) {
  TempDir dir("serve_metrics_failpoint/");
  fs::create_directories(dir.dir());
  ServerConfig config;
  config.tickNs = 1000;
  config.metricsOutPath = dir.dir() + "/metrics.json";

  telemetry::reset();
  {
    support::failpoint::ScopedFailpoints fp("metrics.write");
    Server server(config);
    const auto out = lines(serveAll(
        server, "{\"id\":\"a\",\"op\":\"status\"}\n\n"
                "{\"id\":\"b\",\"op\":\"status\"}\n"));
    // Serving is unharmed by the failed snapshots...
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[1].find("\"ok\":true"), std::string::npos);
    // ...no snapshot landed under the final name...
    EXPECT_FALSE(fs::exists(config.metricsOutPath));
  }
  // ...and the failures are visible in the counter.
  EXPECT_GE(telemetry::snapshot().counter(
                telemetry::Counter::MetricsWriteError),
            1u);
  EXPECT_EQ(
      telemetry::snapshot().counter(telemetry::Counter::MetricsWrites), 0u);

  // Without the failpoint the snapshot pair lands atomically.
  Server server(config);
  server.writeMetricsNow();
  EXPECT_TRUE(fs::exists(config.metricsOutPath));
  EXPECT_TRUE(fs::exists(dir.dir() + "/metrics.prom"));
  std::ifstream in(config.metricsOutPath);
  std::stringstream body;
  body << in.rdbuf();
  const json::Value v = json::parse(body.str());
  EXPECT_EQ(v.find("tool")->asString(), "hcp_serve");
  telemetry::reset();
}

TEST(ServeTop, ScrapesLiveSocketDaemon) {
  const std::string sock =
      std::string(::testing::TempDir()) + "hcp_top_test.sock";
  ::unlink(sock.c_str());
  const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listenFd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(sock.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
  ASSERT_EQ(::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listenFd, 1), 0);

  ServerConfig config;
  config.tickNs = 1000;
  Server server(config);
  std::thread daemon([&] {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) return;
    FdStream stream(fd);
    server.serve(stream.in, stream.out);
    ::close(fd);
  });

  const std::string line = top::scrapeOnce(sock);
  daemon.join();
  ::close(listenFd);
  ::unlink(sock.c_str());

  const top::Scrape s = top::parseMetricsResponse(line);
  EXPECT_EQ(s.tool, "hcp_serve");
  EXPECT_FALSE(s.model);
  EXPECT_FALSE(s.counters.empty());
  bool sawLatency = false;
  for (const top::HistRow& h : s.histograms)
    sawLatency = sawLatency || h.name == "serve_request_latency_ms";
  EXPECT_TRUE(sawLatency);
  const std::string dash = top::renderDashboard(s);
  EXPECT_NE(dash.find("qps"), std::string::npos);
  EXPECT_NE(dash.find("hcp_serve"), std::string::npos);
}

TEST(ServeTop, ScrapeFailsCleanlyWithoutDaemon) {
  EXPECT_THROW(top::scrapeOnce("/nonexistent/dir/never.sock"), Error);
}

}  // namespace
}  // namespace hcp::serve
