#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace hcp {
namespace {

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniformInt(17), 17u);
  }
}

TEST(Rng, UniformIntRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniformInt(0), Error);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniformInt(8)];
  for (int c : counts) {
    EXPECT_GT(c, n / 8 * 0.9);
    EXPECT_LT(c, n / 8 * 1.1);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniformReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(21);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(42);
  Rng child = a.fork();
  // Child continues deterministically; identical reconstruction matches.
  Rng b(42);
  Rng child2 = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next(), child2.next());
}

// --- stats ---------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd{5, 1, 3};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, MedianEmptyIsZero) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, SummarizeCounts) {
  const std::vector<double> v{2, 8, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 2);
  EXPECT_DOUBLE_EQ(s.max, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5);
}

TEST(Stats, HistogramClampsOutliers) {
  const std::vector<double> v{-5, 0.5, 1.5, 99};
  const auto h = histogram(v, 0.0, 2.0, 2);
  EXPECT_EQ(h[0], 2u);  // -5 clamped into first bucket
  EXPECT_EQ(h[1], 2u);  // 99 clamped into last
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVariance) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

// --- strings ---------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("hcp_core", "hcp"));
  EXPECT_FALSE(startsWith("hc", "hcp"));
}

// --- table -----------------------------------------------------------------

TEST(Table, AsciiContainsCells) {
  Table t("Title");
  t.setHeader({"a", "b"});
  t.addRow({"1", "22"});
  const std::string s = t.toAscii();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t;
  t.setHeader({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(Table, CsvEscaping) {
  Table t;
  t.setHeader({"x"});
  t.addRow({"va,l\"ue"});
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("\"va,l\"\"ue\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmtSci(1080000.0), "1.08e+06");
}

// --- error -------------------------------------------------------------

TEST(Error, CheckMessageIncludesExpression) {
  try {
    HCP_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

// --- env::parseU64 -----------------------------------------------------

TEST(EnvParse, AcceptsWholeTokenDigitsOnly) {
  EXPECT_EQ(support::env::parseU64("0"), 0u);
  EXPECT_EQ(support::env::parseU64("42"), 42u);
  EXPECT_EQ(support::env::parseU64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(EnvParse, RejectsEverythingElse) {
  // The strtol failure modes this replaced: trailing junk parsed as a
  // truncated value, and non-numeric input parsed as zero.
  const char* bad[] = {"",   "4abc", "abc",   "-1",  "+1",
                       " 1", "1 ",   "0x10",  "1.5", "18446744073709551616"};
  for (const char* text : bad)
    EXPECT_FALSE(support::env::parseU64(text).has_value()) << text;
}

// --- env::parseF64 -----------------------------------------------------

TEST(EnvParse, F64AcceptsDecimalLiterals) {
  EXPECT_EQ(support::env::parseF64("0"), 0.0);
  EXPECT_EQ(support::env::parseF64("400"), 400.0);
  EXPECT_EQ(support::env::parseF64("0.5"), 0.5);
  EXPECT_EQ(support::env::parseF64("-2.25"), -2.25);
  EXPECT_EQ(support::env::parseF64("1."), 1.0);
  EXPECT_EQ(support::env::parseF64(".5"), 0.5);
  EXPECT_EQ(support::env::parseF64("1e3"), 1000.0);
  EXPECT_EQ(support::env::parseF64("2.5E-2"), 0.025);
  EXPECT_EQ(support::env::parseF64("-1e+2"), -100.0);
}

TEST(EnvParse, F64RejectsEverythingElse) {
  // The strtod failure modes this replaced: "nan" made threshold
  // comparisons vacuously false, "inf" disabled gates, hex floats and
  // trailing junk parsed as something other than what was written.
  const char* bad[] = {"",      ".",      "-",      "1.5x",  "400%",
                       " 1",    "1 ",     "nan",    "NaN",   "inf",
                       "-inf",  "INF",    "0x10",   "0x.8p1", "1e",
                       "1e+",   "1.2.3",  "+1",     "--1",   "1e999"};
  for (const char* text : bad)
    EXPECT_FALSE(support::env::parseF64(text).has_value()) << text;
}

TEST(EnvParse, F64GradualUnderflowIsNotAnError) {
  const auto tiny = support::env::parseF64("1e-320");  // subnormal
  ASSERT_TRUE(tiny.has_value());
  EXPECT_GT(*tiny, 0.0);
}

}  // namespace
}  // namespace hcp
