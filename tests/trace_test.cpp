#include <gtest/gtest.h>

#include <set>

#include "apps/face_detection.hpp"
#include "core/flow.hpp"
#include "trace/backtrace.hpp"

namespace hcp::trace {
namespace {

/// One shared small flow for all back-trace tests (built once).
class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    apps::FaceDetectionConfig cfg;
    cfg.windowTrip = 64;
    cfg.fillTrip = 64;
    cfg.stages = 4;
    device_ = new fpga::Device(fpga::Device::xc7z020like());
    flow_ = new core::FlowResult(
        core::runFlow(apps::faceDetection(cfg), *device_, {}));
  }
  static void TearDownTestSuite() {
    delete flow_;
    delete device_;
    flow_ = nullptr;
    device_ = nullptr;
  }

  static core::FlowResult* flow_;
  static fpga::Device* device_;
};

core::FlowResult* TraceTest::flow_ = nullptr;
fpga::Device* TraceTest::device_ = nullptr;

TEST_F(TraceTest, ProducesSamples) {
  EXPECT_GT(flow_->traced.samples.size(), 100u);
  EXPECT_GT(flow_->traced.cellsTraced, 0u);
}

TEST_F(TraceTest, LabelsWithinMapRange) {
  const auto smoothMax =
      flow_->impl.routing.map.smoothed(2).maxVUtil() + 1e-6;
  for (const Sample& s : flow_->traced.samples) {
    EXPECT_GE(s.vCongestion, 0.0);
    EXPECT_LE(s.vCongestion, smoothMax);
    EXPECT_NEAR(s.avgCongestion, 0.5 * (s.vCongestion + s.hCongestion),
                1e-9);
  }
}

TEST_F(TraceTest, SamplesCarryProvenance) {
  const auto& mod = *flow_->design.module;
  for (const Sample& s : flow_->traced.samples) {
    ASSERT_LT(s.functionIndex, mod.numFunctions());
    const auto& fn = mod.function(s.functionIndex);
    ASSERT_LT(s.op, fn.numOps());
    EXPECT_EQ(s.sourceLine, fn.op(s.op).sourceLine);
    EXPECT_GE(s.centreRadius, 0.0);
    EXPECT_LE(s.centreRadius, 1.0);
    EXPECT_GT(s.numCells, 0u);
  }
}

TEST_F(TraceTest, SamplesUniquePerInstanceOp) {
  std::set<std::pair<rtl::InstanceId, ir::OpId>> seen;
  for (const Sample& s : flow_->traced.samples)
    EXPECT_TRUE(seen.insert({s.instance, s.op}).second);
}

TEST_F(TraceTest, DescribeCellChainsToSource) {
  // Find a cell with op provenance.
  for (rtl::CellId c = 0; c < flow_->rtl.netlist.numCells(); ++c) {
    if (flow_->rtl.netlist.cell(c).ops.empty()) continue;
    const std::string chain = describeCell(
        flow_->rtl, flow_->impl, *flow_->design.module, c);
    EXPECT_NE(chain.find("tile("), std::string::npos);
    EXPECT_NE(chain.find("IR op"), std::string::npos);
    EXPECT_NE(chain.find("source line"), std::string::npos);
    return;
  }
  FAIL() << "no cell with provenance";
}

TEST_F(TraceTest, FilterMarksOnlyLowMarginReplicas) {
  auto samples = flow_->traced.samples;
  const FilterStats stats = filterMarginal(samples);
  EXPECT_EQ(stats.total, samples.size());
  for (const Sample& s : samples) {
    if (!s.marginal) continue;
    EXPECT_GE(s.centreRadius, 0.55);
  }
}

TEST_F(TraceTest, FilterFractionIsSmall) {
  auto samples = flow_->traced.samples;
  const FilterStats stats = filterMarginal(samples);
  // The paper reports ~3.4%; anything under 15% is structurally sane here.
  EXPECT_LT(stats.fraction(), 0.15);
}

TEST(FilterUnit, GroupsByOriginAndFiltersOutliers) {
  std::vector<Sample> samples;
  // Replica group of 6 sharing originOp 7: five hot in the centre, one cold
  // at the margin.
  for (int i = 0; i < 6; ++i) {
    Sample s;
    s.functionIndex = 0;
    s.instance = 0;
    s.op = static_cast<ir::OpId>(i);
    s.originOp = 7;
    s.avgCongestion = i < 5 ? 100.0 : 20.0;
    s.centreRadius = i < 5 ? 0.2 : 0.9;
    samples.push_back(s);
  }
  const FilterStats stats = filterMarginal(samples);
  EXPECT_EQ(stats.marginal, 1u);
  EXPECT_TRUE(samples[5].marginal);
  EXPECT_FALSE(samples[0].marginal);
}

TEST(FilterUnit, SmallGroupsUntouched) {
  std::vector<Sample> samples;
  for (int i = 0; i < 3; ++i) {  // below minGroupSize
    Sample s;
    s.op = static_cast<ir::OpId>(i);
    s.originOp = 1;
    s.avgCongestion = i == 0 ? 1.0 : 100.0;
    s.centreRadius = 0.99;
    samples.push_back(s);
  }
  const FilterStats stats = filterMarginal(samples);
  EXPECT_EQ(stats.marginal, 0u);
}

TEST(FilterUnit, CentralReplicasKeptEvenIfLow) {
  std::vector<Sample> samples;
  for (int i = 0; i < 6; ++i) {
    Sample s;
    s.op = static_cast<ir::OpId>(i);
    s.originOp = 3;
    s.avgCongestion = i < 5 ? 100.0 : 10.0;
    s.centreRadius = 0.1;  // everything central
    samples.push_back(s);
  }
  const FilterStats stats = filterMarginal(samples);
  EXPECT_EQ(stats.marginal, 0u);
}

}  // namespace
}  // namespace hcp::trace
