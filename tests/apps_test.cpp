#include <gtest/gtest.h>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "apps/vision_suite.hpp"
#include "hls/design.hpp"
#include "ir/verifier.hpp"

namespace hcp::apps {
namespace {

TEST(FaceDetection, ModuleVerifies) {
  const auto app = faceDetection({});
  EXPECT_TRUE(ir::verify(*app.module).empty());
  EXPECT_EQ(app.module->top().name(), "face_detect");
}

TEST(FaceDetection, StagesAreDistinctFunctions) {
  FaceDetectionConfig cfg;
  cfg.stages = 6;
  const auto app = faceDetection(cfg);
  // weak_0..5, stage_0..5, cascade, top.
  EXPECT_EQ(app.module->numFunctions(), 2u * 6 + 1 + 1);
  EXPECT_NE(app.module->findFunction("stage_3"), ir::kInvalidIndex);
}

TEST(FaceDetection, DirectivesMatchConfig) {
  FaceDetectionConfig cfg;
  const auto app = faceDetection(cfg);
  EXPECT_TRUE(app.directives.shouldInline("stage_0"));
  EXPECT_TRUE(app.directives.shouldInline("cascade_classifier"));
  const auto loop = app.directives.loopDirective("face_detect", "windows");
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->unrollFactor, cfg.windowUnroll);
  const auto arr = app.directives.arrayDirective("face_detect", "window");
  ASSERT_TRUE(arr.has_value());
  EXPECT_TRUE(arr->complete);
}

TEST(FaceDetection, WithoutDirectivesHasNone) {
  FaceDetectionConfig cfg;
  cfg.withDirectives = false;
  const auto app = faceDetection(cfg);
  EXPECT_TRUE(app.directives.empty());
}

TEST(FaceDetection, NotInlineKeepsModules) {
  FaceDetectionConfig cfg;
  cfg.inlineClassifiers = false;
  const auto app = faceDetection(cfg);
  EXPECT_FALSE(app.directives.shouldInline("stage_0"));
  // Unroll/partition directives remain.
  EXPECT_TRUE(
      app.directives.loopDirective("face_detect", "windows").has_value());
}

TEST(FaceDetection, ReplicationCreatesArrayCopies) {
  FaceDetectionConfig cfg;
  cfg.inlineClassifiers = false;
  cfg.replicateWindowArray = true;
  cfg.replicationCopies = 4;
  const auto app = faceDetection(cfg);
  EXPECT_EQ(app.module->top().numArrays(), 4u);
  EXPECT_NE(app.module->findFunction("cascade_part2"), ir::kInvalidIndex);
}

TEST(FaceDetection, InlineFlattensCompletely) {
  FaceDetectionConfig cfg;
  cfg.stages = 4;
  cfg.windowTrip = 32;
  auto app = faceDetection(cfg);
  const auto design =
      hls::synthesize(std::move(app.module), app.directives, {});
  const auto& top = design.topFunction();
  for (ir::OpId id = 0; id < top.numOps(); ++id)
    EXPECT_NE(top.op(id).opcode, ir::Opcode::Call);
}

TEST(DigitRecognition, StructureAndDirectives) {
  const auto app = digitRecognition({});
  EXPECT_TRUE(ir::verify(*app.module).empty());
  const auto loop = app.directives.loopDirective("digitrec", "distance");
  ASSERT_TRUE(loop.has_value());
  EXPECT_TRUE(loop->pipeline);
  // Popcount-heavy kernel.
  std::size_t pops = 0;
  const auto& fn = app.module->top();
  for (ir::OpId id = 0; id < fn.numOps(); ++id)
    if (fn.op(id).opcode == ir::Opcode::PopCount) ++pops;
  EXPECT_GE(pops, 1u);
}

TEST(SpamFilter, StructureVerifies) {
  const auto app = spamFilter({});
  EXPECT_TRUE(ir::verify(*app.module).empty());
  EXPECT_EQ(app.module->top().numArrays(), 2u);  // weights + features
}

TEST(DigitSpam, CombinedTopCallsBoth) {
  const auto app = digitSpamCombined();
  EXPECT_TRUE(ir::verify(*app.module).empty());
  const auto& top = app.module->top();
  std::size_t calls = 0;
  for (ir::OpId id = 0; id < top.numOps(); ++id)
    if (top.op(id).opcode == ir::Opcode::Call) ++calls;
  EXPECT_EQ(calls, 2u);
}

TEST(VisionSuite, IndividualAppsVerify) {
  EXPECT_TRUE(ir::verify(*bnn({}).module).empty());
  EXPECT_TRUE(ir::verify(*rendering3d({}).module).empty());
  EXPECT_TRUE(ir::verify(*opticalFlow({}).module).empty());
}

TEST(VisionSuite, OpticalFlowUsesFloatingPoint) {
  const auto app = opticalFlow({});
  const auto& fn = app.module->top();
  std::size_t fp = 0;
  for (ir::OpId id = 0; id < fn.numOps(); ++id) {
    const auto op = fn.op(id).opcode;
    if (op == ir::Opcode::FMul || op == ir::Opcode::FAdd ||
        op == ir::Opcode::FDiv)
      ++fp;
  }
  EXPECT_GE(fp, 10u);
}

TEST(VisionSuite, CombinedCallsAllThree) {
  const auto app = visionCombined();
  EXPECT_TRUE(ir::verify(*app.module).empty());
  EXPECT_EQ(app.module->numFunctions(), 4u);
}

TEST(AllApps, SynthesizeWithinDeviceBudget) {
  // Every evaluated design must fit the XC7Z020-class budgets.
  std::vector<AppDesign> designs;
  designs.push_back(faceDetection({}));
  designs.push_back(digitSpamCombined());
  designs.push_back(visionCombined());
  for (auto& app : designs) {
    const auto design =
        hls::synthesize(std::move(app.module), app.directives, {});
    const auto& res = design.top().report.totalRes;
    EXPECT_LT(res.lut, 53200.0 * 0.95) << app.name;
    EXPECT_LT(res.dsp, 246.0) << app.name;
    EXPECT_LT(res.bram, 328.0) << app.name;
  }
}

/// Parameterized scaling: unroll factors scale design size monotonically.
class FaceDetScaling : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FaceDetScaling, OpsGrowWithUnroll) {
  FaceDetectionConfig small;
  small.windowUnroll = 1;
  FaceDetectionConfig big;
  big.windowUnroll = GetParam();
  auto appSmall = faceDetection(small);
  auto appBig = faceDetection(big);
  const auto dSmall =
      hls::synthesize(std::move(appSmall.module), appSmall.directives, {});
  const auto dBig =
      hls::synthesize(std::move(appBig.module), appBig.directives, {});
  EXPECT_GT(dBig.topFunction().numOps(), dSmall.topFunction().numOps());
}

INSTANTIATE_TEST_SUITE_P(Unrolls, FaceDetScaling, ::testing::Values(2u, 3u));

}  // namespace
}  // namespace hcp::apps
