#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "fpga/router.hpp"

namespace hcp::fpga {
namespace {

/// Manual packing/placement of point-to-point nets for routing tests.
struct Fixture {
  Packing packing;
  Placement placement;

  ClusterId addClusterAt(std::uint32_t x, std::uint32_t y) {
    Cluster c;
    c.site = TileType::Clb;
    packing.clusters.push_back(c);
    placement.tileOfCluster.push_back({x, y});
    return static_cast<ClusterId>(packing.clusters.size() - 1);
  }

  void addNet(ClusterId from, std::vector<ClusterId> to,
              std::uint16_t width) {
    ClusterNet net;
    net.width = width;
    net.driver = from;
    net.sinks = std::move(to);
    packing.nets.push_back(std::move(net));
  }
};

TEST(Router, RouteLengthIsManhattanWhenUncongested) {
  Fixture f;
  const auto a = f.addClusterAt(10, 10);
  const auto b = f.addClusterAt(25, 30);
  f.addNet(a, {b}, 8);
  const Device dev = Device::xc7z020like();
  const auto result = route(f.packing, f.placement, dev, {});
  EXPECT_EQ(result.routes[0].size(), 15u + 20u);
  EXPECT_EQ(result.overflowTiles, 0u);
}

TEST(Router, DemandEqualsWidthAlongRoute) {
  Fixture f;
  const auto a = f.addClusterAt(10, 10);
  const auto b = f.addClusterAt(20, 10);  // pure horizontal
  f.addNet(a, {b}, 12);
  const Device dev = Device::xc7z020like();
  const auto result = route(f.packing, f.placement, dev, {});
  double totalH = 0.0;
  for (std::uint32_t x = 0; x < dev.width(); ++x)
    for (std::uint32_t y = 0; y < dev.height(); ++y)
      totalH += result.map.hDemand(x, y);
  EXPECT_DOUBLE_EQ(totalH, 12.0 * 10.0);
}

TEST(Router, MultiTerminalTreeSharesTrunk) {
  Fixture f;
  const auto src = f.addClusterAt(10, 40);
  const auto s1 = f.addClusterAt(40, 40);
  const auto s2 = f.addClusterAt(40, 42);
  f.addNet(src, {s1, s2}, 8);
  const Device dev = Device::xc7z020like();
  const auto result = route(f.packing, f.placement, dev, {});
  // A Steiner-ish tree is far shorter than two independent routes
  // (2 x 30ish); the shared trunk means total ~32-40 steps.
  EXPECT_LT(result.routes[0].size(), 45u);
  EXPECT_GE(result.routes[0].size(), 32u);
}

TEST(Router, NegotiationSpreadsOverflow) {
  // Many wide nets crossing the same corridor.
  Fixture f;
  const Device dev = Device::xc7z020like();
  for (int i = 0; i < 12; ++i) {
    const auto a = f.addClusterAt(20, 38 + (i % 3));
    const auto b = f.addClusterAt(50, 38 + (i % 3));
    f.addNet(a, {b}, 24);
  }
  RouterConfig oneShot;
  oneShot.maxIterations = 1;
  RouterConfig negotiated;
  negotiated.maxIterations = 8;
  negotiated.bboxMargin = 12;
  const auto first = route(f.packing, f.placement, dev, oneShot);
  const auto final = route(f.packing, f.placement, dev, negotiated);
  EXPECT_LE(final.map.maxHUtil(), first.map.maxHUtil());
}

TEST(Router, DeterministicResults) {
  Fixture f;
  hcp::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const auto a = f.addClusterAt(5 + rng.uniformInt(60),
                                  5 + rng.uniformInt(60));
    const auto b = f.addClusterAt(5 + rng.uniformInt(60),
                                  5 + rng.uniformInt(60));
    f.addNet(a, {b}, 8);
  }
  const Device dev = Device::xc7z020like();
  const auto r1 = route(f.packing, f.placement, dev, {});
  const auto r2 = route(f.packing, f.placement, dev, {});
  ASSERT_EQ(r1.routes.size(), r2.routes.size());
  for (std::size_t n = 0; n < r1.routes.size(); ++n)
    EXPECT_EQ(r1.routes[n].size(), r2.routes[n].size());
  EXPECT_DOUBLE_EQ(r1.totalWirelength, r2.totalWirelength);
}

TEST(Router, DirtyTileSweepMatchesFullGridScan) {
  // The dirty-tile overflow/history sweep must be byte-identical to the
  // pre-incremental full-grid scan — same overflow counts, same history
  // accumulation, hence the same rip-up set and bit-equal final routes.
  // The fixture forces real congestion so negotiation actually iterates.
  Fixture f;
  hcp::Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    const auto a = f.addClusterAt(5 + rng.uniformInt(60),
                                  5 + rng.uniformInt(60));
    const auto b = f.addClusterAt(5 + rng.uniformInt(60),
                                  5 + rng.uniformInt(60));
    f.addNet(a, {b}, 8);
  }
  for (int i = 0; i < 12; ++i) {  // congested corridor
    const auto a = f.addClusterAt(20, 38 + (i % 3));
    const auto b = f.addClusterAt(50, 38 + (i % 3));
    f.addNet(a, {b}, 24);
  }
  const Device dev = Device::xc7z020like();
  RouterConfig dirty;
  dirty.maxIterations = 8;
  RouterConfig full = dirty;
  full.dirtyTileScan = false;
  const auto rd = route(f.packing, f.placement, dev, dirty);
  const auto rf = route(f.packing, f.placement, dev, full);
  EXPECT_GT(rd.iterationsRun, 1) << "fixture failed to congest";
  ASSERT_EQ(rd.iterationsRun, rf.iterationsRun);
  EXPECT_EQ(rd.overflowTiles, rf.overflowTiles);
  EXPECT_EQ(rd.totalWirelength, rf.totalWirelength);  // bit-equal, not near
  ASSERT_EQ(rd.routes.size(), rf.routes.size());
  for (std::size_t n = 0; n < rd.routes.size(); ++n) {
    ASSERT_EQ(rd.routes[n].size(), rf.routes[n].size()) << "net " << n;
    for (std::size_t s = 0; s < rd.routes[n].size(); ++s) {
      EXPECT_EQ(rd.routes[n][s].x, rf.routes[n][s].x);
      EXPECT_EQ(rd.routes[n][s].y, rf.routes[n][s].y);
      EXPECT_EQ(rd.routes[n][s].vertical, rf.routes[n][s].vertical);
    }
  }
  for (std::uint32_t y = 0; y < dev.height(); ++y)
    for (std::uint32_t x = 0; x < dev.width(); ++x) {
      ASSERT_EQ(rd.map.vDemand(x, y), rf.map.vDemand(x, y))
          << "tile " << x << "," << y;
      ASSERT_EQ(rd.map.hDemand(x, y), rf.map.hDemand(x, y))
          << "tile " << x << "," << y;
    }
}

TEST(Router, UtilizationAccountsCapacityBoost) {
  // Same demand on a boosted tile (next to a DSP column) yields lower
  // utilization than on a plain tile.
  const Device dev = Device::xc7z020like();
  CongestionMap map = CongestionMap::forDevice(dev);
  map.addHorizontal(19, 10, 20.0);  // boosted (next to x=18 DSP column)
  map.addHorizontal(13, 10, 20.0);  // plain
  EXPECT_LT(map.hUtil(19, 10), map.hUtil(13, 10));
}

TEST(Router, RudyEstimateCoversBbox) {
  Fixture f;
  const auto a = f.addClusterAt(10, 10);
  const auto b = f.addClusterAt(20, 20);
  f.addNet(a, {b}, 10);
  const Device dev = Device::xc7z020like();
  const auto rudy = estimateRudy(f.packing, f.placement, dev);
  // Demand present inside the bbox, absent outside.
  EXPECT_GT(rudy.hDemand(15, 15), 0.0);
  EXPECT_DOUBLE_EQ(rudy.hDemand(50, 50), 0.0);
}

TEST(CongestionMapTest, SmoothingPreservesTotalDemand) {
  CongestionMap map(20, 20, 10, 10);
  map.addHorizontal(10, 10, 100.0);
  const auto smooth = map.smoothed(2);
  double before = 0.0, after = 0.0;
  for (std::uint32_t y = 0; y < 20; ++y)
    for (std::uint32_t x = 0; x < 20; ++x) {
      before += map.hDemand(x, y);
      after += smooth.hDemand(x, y);
    }
  // Interior blur preserves mass up to boundary effects.
  EXPECT_NEAR(after, before, before * 0.05);
  EXPECT_LT(smooth.hDemand(10, 10), map.hDemand(10, 10));
  EXPECT_GT(smooth.hDemand(12, 10), 0.0);
}

TEST(CongestionMapTest, TilesOverThreshold) {
  CongestionMap map(8, 8, 10, 10);
  map.addVertical(2, 2, 15.0);   // 150%
  map.addHorizontal(3, 3, 9.0);  // 90%
  EXPECT_EQ(map.tilesOver(100.0), 1u);
  EXPECT_EQ(map.tilesOver(80.0), 2u);
}

TEST(CongestionMapTest, AsciiArtBuckets) {
  CongestionMap map(4, 4, 10, 10);
  map.addVertical(0, 3, 12.0);  // >=100% -> '@' (top-left in output)
  const std::string art = map.toAscii(true);
  EXPECT_EQ(art[0], '@');
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(CongestionMapTest, CsvHasHeaderAndRows) {
  CongestionMap map(2, 2, 10, 10);
  const std::string csv = map.toCsv();
  EXPECT_EQ(csv.rfind("x,y,v_util,h_util", 0), 0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

}  // namespace
}  // namespace hcp::fpga
