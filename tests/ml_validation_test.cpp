#include <gtest/gtest.h>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/validation.hpp"
#include "support/rng.hpp"

namespace hcp::ml {
namespace {

Dataset linearData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(3);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x{rng.uniformReal(-1, 1), rng.uniformReal(-1, 1),
                          rng.uniformReal(-1, 1)};
    data.add(x, 3 * x[0] - x[1] + rng.normal(0, 0.1));
  }
  return data;
}

TEST(CrossValidate, RunsAllFolds) {
  const auto data = linearData(200, 1);
  const CvResult cv = crossValidate(
      [] { return std::make_unique<LassoRegression>(); }, data, 5, 42);
  EXPECT_EQ(cv.foldMae.size(), 5u);
  EXPECT_EQ(cv.foldMedae.size(), 5u);
  EXPECT_GT(cv.meanMae, 0.0);
  EXPECT_LT(cv.meanMae, 0.3);  // easy linear problem
  EXPECT_LE(cv.meanMedae, cv.meanMae * 1.5);
}

TEST(CrossValidate, DeterministicPerSeed) {
  const auto data = linearData(150, 2);
  auto factory = [] { return std::make_unique<LassoRegression>(); };
  const CvResult a = crossValidate(factory, data, 4, 7);
  const CvResult b = crossValidate(factory, data, 4, 7);
  EXPECT_DOUBLE_EQ(a.meanMae, b.meanMae);
}

TEST(GridSearch, PicksBestAlpha) {
  const auto data = linearData(300, 3);
  // Absurdly strong regularization must lose to a sensible one.
  const std::vector<LassoConfig> grid{
      {.alpha = 0.01}, {.alpha = 50.0}};
  const auto result = gridSearch<LassoConfig>(
      grid,
      [](const LassoConfig& c) {
        return std::make_unique<LassoRegression>(c);
      },
      data, 4, 11);
  EXPECT_DOUBLE_EQ(result.bestConfig.alpha, 0.01);
  EXPECT_EQ(result.all.size(), 2u);
  EXPECT_LE(result.bestCv.meanMae, result.all[1].second.meanMae);
}

TEST(GridSearch, SingleCandidateWorks) {
  const auto data = linearData(100, 4);
  const std::vector<GbrtConfig> grid{{.numEstimators = 20}};
  const auto result = gridSearch<GbrtConfig>(
      grid,
      [](const GbrtConfig& c) { return std::make_unique<Gbrt>(c); },
      data, 3, 5);
  EXPECT_EQ(result.bestConfig.numEstimators, 20u);
}

TEST(GridSearch, EmptyGridRejected) {
  const auto data = linearData(50, 5);
  EXPECT_THROW(
      gridSearch<LassoConfig>(
          {},
          [](const LassoConfig& c) {
            return std::make_unique<LassoRegression>(c);
          },
          data, 3, 1),
      hcp::Error);
}

}  // namespace
}  // namespace hcp::ml
