#include <gtest/gtest.h>

#include "hls/charlib.hpp"
#include "support/error.hpp"

namespace hcp::hls {
namespace {

using ir::Opcode;

class CharLibTest : public ::testing::Test {
 protected:
  CharLibrary lib = CharLibrary::xilinx7();
};

TEST_F(CharLibTest, AdderScalesWithWidth) {
  const auto a8 = lib.query(Opcode::Add, 8);
  const auto a32 = lib.query(Opcode::Add, 32);
  EXPECT_LT(a8.res.lut, a32.res.lut);
  EXPECT_LT(a8.delayNs, a32.delayNs);
  EXPECT_EQ(a8.latency, 0u);  // combinational
}

TEST_F(CharLibTest, WideMultiplierUsesDsp) {
  const auto m16 = lib.query(Opcode::Mul, 16);
  EXPECT_GT(m16.res.dsp, 0.0);
  EXPECT_GT(m16.latency, 0u);  // pipelined macro
}

TEST_F(CharLibTest, NarrowMultiplierUsesLuts) {
  const auto m8 = lib.query(Opcode::Mul, 8);
  EXPECT_EQ(m8.res.dsp, 0.0);
  EXPECT_GT(m8.res.lut, 0.0);
}

TEST_F(CharLibTest, DividerIsIterative) {
  const auto d = lib.query(Opcode::Div, 16);
  EXPECT_EQ(d.latency, 16u);  // one cycle per bit
  EXPECT_GT(d.res.lut, lib.query(Opcode::Add, 16).res.lut);
}

TEST_F(CharLibTest, WiringOpsAreFree) {
  for (Opcode op : {Opcode::Trunc, Opcode::ZExt, Opcode::SExt,
                    Opcode::BitCast, Opcode::Passthrough}) {
    const auto s = lib.query(op, 32);
    EXPECT_EQ(s.res.total(), 0.0) << ir::opcodeName(op);
    EXPECT_EQ(s.delayNs, 0.0) << ir::opcodeName(op);
  }
}

TEST_F(CharLibTest, FloatingPointIsExpensive) {
  const auto fadd = lib.query(Opcode::FAdd, 32);
  const auto add = lib.query(Opcode::Add, 32);
  EXPECT_GT(fadd.res.lut, add.res.lut);
  EXPECT_GT(fadd.latency, add.latency);
  EXPECT_GT(lib.query(Opcode::FMul, 32).res.dsp, 0.0);
}

TEST_F(CharLibTest, MuxGrowsWithInputsAndWidth) {
  const auto m2 = lib.muxSpec(2, 16);
  const auto m8 = lib.muxSpec(8, 16);
  const auto m8w = lib.muxSpec(8, 32);
  EXPECT_LT(m2.res.lut, m8.res.lut);
  EXPECT_LT(m8.res.lut, m8w.res.lut);
  EXPECT_LT(m2.delayNs, m8.delayNs);
}

TEST_F(CharLibTest, MuxNeedsAtLeastTwoInputs) {
  EXPECT_THROW(lib.muxSpec(1, 8), hcp::Error);
}

TEST_F(CharLibTest, MemoryMapping) {
  // Fully partitioned: registers.
  const auto regs = lib.memorySpec(16, 8, 16);
  EXPECT_GT(regs.ff, 0.0);
  EXPECT_EQ(regs.bram, 0.0);
  // Shallow: LUTRAM.
  const auto lutram = lib.memorySpec(32, 16, 1);
  EXPECT_GT(lutram.lut, 0.0);
  EXPECT_EQ(lutram.bram, 0.0);
  // Deep: block RAM.
  const auto bram = lib.memorySpec(4096, 32, 1);
  EXPECT_GT(bram.bram, 0.0);
}

TEST_F(CharLibTest, MemoryBanksSplitCost) {
  const auto one = lib.memorySpec(4096, 32, 1);
  const auto four = lib.memorySpec(4096, 32, 4);
  // Banking cannot reduce total BRAM below the single-bank amount.
  EXPECT_GE(four.bram, one.bram);
}

TEST_F(CharLibTest, RegisterCostIsWidth) {
  EXPECT_DOUBLE_EQ(lib.registerSpec(24).ff, 24.0);
}

TEST_F(CharLibTest, ResourceArithmetic) {
  Resource a{1, 2, 3, 4}, b{10, 20, 30, 40};
  const Resource sum = a + b;
  EXPECT_DOUBLE_EQ(sum.lut, 11);
  EXPECT_DOUBLE_EQ(sum.bram, 44);
  const Resource scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.ff, 4);
  EXPECT_DOUBLE_EQ(a.total(), 10.0);
}

/// Property sweep: every opcode at several widths yields sane numbers.
class CharLibSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(CharLibSweep, SpecIsSane) {
  const auto lib = CharLibrary::xilinx7();
  const auto opcode = ir::opcodeFromIndex(std::get<0>(GetParam()));
  const auto width = static_cast<std::uint16_t>(std::get<1>(GetParam()));
  const auto s = lib.query(opcode, width);
  EXPECT_GE(s.delayNs, 0.0);
  EXPECT_LT(s.delayNs, 10.0);
  EXPECT_GE(s.res.lut, 0.0);
  EXPECT_GE(s.res.ff, 0.0);
  EXPECT_GE(s.res.dsp, 0.0);
  EXPECT_GE(s.res.bram, 0.0);
  EXPECT_LT(s.latency, 80u);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, CharLibSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, ir::kNumOpcodes),
                       ::testing::Values(1, 8, 16, 32, 64)));

}  // namespace
}  // namespace hcp::hls
